#include "direct/rdma_producer.h"

#include <algorithm>
#include <span>
#include <vector>

#include "sim/awaitable.h"

namespace kafkadirect {
namespace kd {

using kafka::ErrorCode;

namespace {
constexpr int kAckRecvDepth = 512;
}

RdmaProducer::RdmaProducer(sim::Simulator& sim, net::Fabric& fabric,
                           tcpnet::Network& tcp, net::NodeId node,
                           RdmaProducerConfig config)
    : sim_(sim), fabric_(fabric), tcp_(tcp), node_(node), config_(config),
      rnic_(sim, fabric, node), window_(sim, config.max_inflight),
      claim_mu_(std::make_unique<sim::AsyncMutex>(sim)),
      post_mu_(std::make_unique<sim::AsyncMutex>(sim)),
      ctrl_mu_(std::make_unique<sim::AsyncMutex>(sim)) {
  notify_imm_ = fabric.obs().metrics.GetCounter("kd.direct.notify.write_imm");
  notify_send_ =
      fabric.obs().metrics.GetCounter("kd.direct.notify.write_send");
}

RdmaProducer::~RdmaProducer() {
  *alive_ = false;
  Close();
}

void RdmaProducer::Close() {
  closed_ = true;
  if (qp_ != nullptr) qp_->Disconnect();
  // Wake RecvAckLoop/SendCqDrainer parked on an empty CQ so their frames
  // run to completion instead of leaking (coroutine-aware teardown, §14).
  if (send_cq_ != nullptr) send_cq_->Shutdown();
  if (recv_cq_ != nullptr) recv_cq_->Shutdown();
  if (ctrl_ != nullptr) ctrl_->Close();
}

sim::Co<Status> RdmaProducer::ConnectImpl(KafkaDirectBroker* leader,
                                          kafka::TopicPartitionId tp) {
  leader_ = leader;
  tp_ = tp;
  auto ctrl_or =
      co_await tcp_.Connect(node_, leader->node(), kafka::kKafkaPort);
  if (!ctrl_or.ok()) co_return ctrl_or.status();
  ctrl_ = ctrl_or.value();

  send_cq_ = rnic_.CreateCq();
  recv_cq_ = rnic_.CreateCq();
  qp_ = rnic_.CreateQp(send_cq_, recv_cq_);
  if (config_.signal_interval > 1) {
    // Selective signaling: unsignaled SQ slots are reclaimed lazily, so
    // the interval must guarantee a signaled WR inside a full SQ. Write+
    // Send posts two WRs per produce, hence the /4 clamp.
    int cap = std::max(1, fabric_.cost().rdma.max_send_wr / 4);
    signal_every_ = std::min(config_.signal_interval, cap);
    qp_->set_selective_signaling(true);
  }
  auto broker_qp = co_await leader->AcceptRdma(qp_);
  if (!broker_qp.ok()) co_return broker_qp.status();
  broker_qp_num_ = broker_qp.value()->qp_num();
  ack_bufs_.clear();
  std::vector<rdma::RecvRequest> recvs(kAckRecvDepth);
  for (int i = 0; i < kAckRecvDepth; i++) {
    ack_bufs_.emplace_back(kCtrlMsgSize);
    recvs[i].wr_id = static_cast<uint64_t>(i);
    recvs[i].buf = ack_bufs_.back().data();
    recvs[i].len = kCtrlMsgSize;
  }
  // One postlist (one doorbell) instead of kAckRecvDepth separate posts.
  KD_CO_RETURN_IF_ERROR(
      qp_->PostRecv(std::span<const rdma::RecvRequest>(recvs)));
  sim::Spawn(sim_, RecvAckLoop(alive_, recv_cq_));
  sim::Spawn(sim_, SendCqDrainer(alive_, send_cq_));
  co_return co_await RequestAccess(0);
}

sim::Co<Status> RdmaProducer::RequestAccess(uint16_t stale_file_id,
                                            uint64_t rotate_target) {
  co_await ctrl_mu_->Lock();
  if (stale_file_id != 0 && stale_file_id != file_id_) {
    // Another in-flight request already rotated; nothing to do.
    ctrl_mu_->Unlock();
    co_return Status::OK();
  }
  kafka::RdmaProduceAccessRequest req;
  req.tp = tp_;
  req.exclusive = config_.exclusive;
  req.stale_file_id = stale_file_id;
  req.broker_qp = broker_qp_num_;
  req.rotate_target = rotate_target;
  Status sent = co_await ctrl_->Send(Encode(req), false);
  if (!sent.ok()) {
    ctrl_mu_->Unlock();
    co_return sent;
  }
  auto frame = co_await ctrl_->Recv();
  if (!frame.ok()) {
    ctrl_mu_->Unlock();
    co_return frame.status();
  }
  kafka::RdmaProduceAccessResponse resp;
  Status decoded = kafka::Decode(Slice(frame.value()), &resp);
  if (!decoded.ok()) {
    ctrl_mu_->Unlock();
    co_return decoded;
  }
  if (resp.error != ErrorCode::kNone) {
    return_error_ = resp.error;
    ctrl_mu_->Unlock();
    co_return Status::PermissionDenied(
        std::string("RDMA produce access denied: ") +
        ErrorCodeName(resp.error));
  }
  file_id_ = resp.file_id;
  file_addr_ = resp.addr;
  file_rkey_ = resp.rkey;
  file_capacity_ = resp.capacity;
  write_pos_ = resp.write_pos;
  atomic_addr_ = resp.atomic_addr;
  atomic_rkey_ = resp.atomic_rkey;
  if (stale_file_id != 0) rotations_++;
  ctrl_mu_->Unlock();
  co_return Status::OK();
}

sim::Co<StatusOr<uint64_t>> RdmaProducer::ClaimRegion(uint64_t size) {
  for (int attempt = 0; attempt < 8; attempt++) {
    uint64_t wr_id = next_wr_id_++;
    auto result = std::make_shared<std::vector<uint8_t>>(8, 0);
    auto ev = std::make_shared<sim::Event>(sim_);
    faa_waiters_[wr_id] = ev;
    faa_results_[wr_id] = result;
    rdma::WorkRequest wr;
    wr.wr_id = wr_id;
    wr.opcode = rdma::Opcode::kFetchAdd;
    wr.local_addr = result->data();
    wr.remote_addr = atomic_addr_;
    wr.rkey = atomic_rkey_;
    wr.compare_add = FaaClaim(size);
    Status st = qp_->PostSend(wr);
    if (!st.ok()) co_return st;
    faa_issued_++;
    // The FAA completion is busy-polled (fast path; no blocking wakeup).
    co_await ev->Wait();
    faa_waiters_.erase(wr_id);
    faa_results_.erase(wr_id);
    if (faa_failed_) co_return Status::Disconnected("FAA failed");
    uint64_t word = DecodeFixed64(result->data());
    uint64_t pos = AtomicOffset(word);
    if (pos + size > file_capacity_) {
      // Overflow detected via the extra offset bits (§4.2.2, Fig. 5):
      // request a new head file and retry. `pos` is where in-range claims
      // end; the broker rotates once commits reach it.
      KD_CO_RETURN_IF_ERROR(co_await RequestAccess(
          file_id_, std::min<uint64_t>(pos, file_capacity_)));
      continue;
    }
    co_return word;
  }
  co_return Status::ResourceExhausted("shared produce rotation livelock");
}

sim::Co<Status> RdmaProducer::SendOne(Slice key, Slice value,
                                      std::shared_ptr<Pending>* out) {
  if (closed_ || qp_ == nullptr) {
    co_return Status::Disconnected("producer closed");
  }
  const CostModel& cm = fabric_.cost();
  sim::TimeNs started_at = sim_.Now();
  // Application thread: producer API entry + the Kafka client's defensive
  // copy of user data (§5.1). The handoff to the sender thread and the
  // region claim/post run pipelined in SenderStage.
  co_await sim::Delay(
      sim_,
      cm.kafka.rdma_producer_api_ns +
          static_cast<sim::TimeNs>(cm.kafka.producer_copy_ns_per_byte *
                                   static_cast<double>(key.size() +
                                                       value.size())));
  kafka::RecordBatchBuilder builder(0, sim_.Now(), config_.producer_id);
  builder.Add(key, value);
  auto pending = std::make_shared<Pending>();
  pending->batch = builder.Build();
  pending->payload_bytes = key.size() + value.size();
  pending->done = std::make_shared<sim::Event>(sim_);
  pending->sent_at = started_at;

  uint64_t pos = 0;
  if (config_.exclusive) {
    // Position assignment must stay on the submission path so pipelined
    // writes land back to back.
    if (pending->batch.size() > file_capacity_ - write_pos_) {
      // Not enough room left: timely request a new head file (§4.2.2).
      // In-flight pipelined writes end at write_pos_.
      KD_CO_RETURN_IF_ERROR(co_await RequestAccess(file_id_, write_pos_));
    }
    pos = write_pos_;
    write_pos_ += pending->batch.size();
    pending_.push_back(pending);  // exclusive acks match FIFO
  }
  sim::Spawn(sim_, SenderStage(sim_, cm.cpu.handoff_ns, this, alive_,
                               pending, pos));
  *out = pending;
  co_return Status::OK();
}

sim::Co<void> RdmaProducer::SenderStage(sim::Simulator& sim,
                                        sim::TimeNs handoff,
                                        RdmaProducer* self,
                                        std::shared_ptr<bool> alive,
                                        std::shared_ptr<Pending> pending,
                                        uint64_t pos) {
  // Handoff from the API thread to the client's sender thread. `self` must
  // not be touched before the aliveness check.
  co_await sim::Delay(sim, handoff);
  if (!*alive) co_return;  // producer destroyed while we were queued
  const CostModel& cm = self->fabric_.cost();
  uint16_t order = 0;
  if (!self->config_.exclusive) {
    // Claims are serialized per producer: the sender cannot form the write
    // before its FAA returns (§4.2.2), which is what keeps shared mode
    // below exclusive in Figs. 6/11.
    co_await self->claim_mu_->Lock();
    if (!*alive) co_return;
    auto word_or = co_await self->ClaimRegion(pending->batch.size());
    if (!*alive) co_return;
    if (word_or.ok()) {
      co_await sim::Delay(sim, cm.kafka.faa_sync_ns);
      if (!*alive) co_return;
    }
    self->claim_mu_->Unlock();
    if (!word_or.ok()) {
      pending->ack.error = static_cast<uint16_t>(ErrorCode::kTimedOut);
      self->errors_++;
      self->window_.Release();
      pending->done->Set();
      co_return;
    }
    pos = AtomicOffset(word_or.value());
    order = AtomicOrder(word_or.value());
    pending->order = order;
    self->pending_by_order_[order] = pending;
  }

  rdma::WorkRequest wr;
  wr.wr_id = self->next_wr_id_++;
  wr.local_addr = pending->batch.data();
  wr.length = static_cast<uint32_t>(pending->batch.size());
  wr.remote_addr = self->file_addr_ + pos;
  wr.rkey = self->file_rkey_;
  // Shared notification policy (control.h): the legacy boolean forces
  // Write+Send; otherwise the configured mode (static or size-adaptive)
  // decides per message. Selective signaling thins the signal to every
  // `signal_every_`th notification WR — acks arrive via the broker's
  // ctrl Sends, so the producer never depends on its own data CQEs.
  NotifyMode mode = self->config_.write_send_notification
                        ? NotifyMode::kWriteSend
                        : self->config_.notify_mode;
  NotifyPlan plan = PlanNotification(mode, pending->batch.size(),
                                     self->config_.notify_crossover_bytes);
  bool signal_this =
      self->signal_every_ <= 1 ||
      (++self->notify_seq_ % static_cast<uint64_t>(self->signal_every_)) == 0;
  rdma::WorkRequest notify_wr;
  if (plan.separate_send) {
    // Write+Send: the data write carries no notification; a small Send
    // with the metadata follows, ordered behind the write by RC delivery.
    wr.opcode = rdma::Opcode::kWrite;
    wr.signaled = false;
    CtrlMsg msg;
    msg.kind = CtrlKind::kProduceNotify;
    msg.order = order;
    msg.aux = self->file_id_;
    msg.value = static_cast<int64_t>(pending->batch.size());
    pending->notify.resize(kCtrlMsgSize);
    msg.EncodeTo(pending->notify.data());
    notify_wr.wr_id = self->next_wr_id_++;
    notify_wr.opcode = rdma::Opcode::kSend;
    notify_wr.signaled = signal_this;
    notify_wr.local_addr = pending->notify.data();
    notify_wr.length = kCtrlMsgSize;
    self->notify_send_->Increment();
  } else {
    wr.opcode = rdma::Opcode::kWriteWithImm;
    wr.signaled = signal_this;
    wr.imm_data = EncodeImm(order, self->file_id_);
    self->notify_imm_->Increment();
  }
  // Exclusive mode requires arrival order == position order.
  co_await self->post_mu_->Lock();
  if (!*alive) co_return;
  Status st = self->qp_->PostSend(wr);
  while (st.IsResourceExhausted()) {
    co_await sim::Delay(sim, 1000);  // send queue full
    if (!*alive) co_return;
    st = self->qp_->PostSend(wr);
  }
  if (st.ok() && plan.separate_send) {
    st = self->qp_->PostSend(notify_wr);
    while (st.IsResourceExhausted()) {
      co_await sim::Delay(sim, 1000);
      if (!*alive) co_return;
      st = self->qp_->PostSend(notify_wr);
    }
  }
  self->post_mu_->Unlock();
  if (!st.ok()) {
    pending->ack.error =
        static_cast<uint16_t>(ErrorCode::kRdmaAccessDenied);
    self->errors_++;
    self->window_.Release();
    pending->done->Set();
  }
}

void RdmaProducer::FailAllPending() {
  // Connection torn down: fail everything outstanding.
  for (auto& pending : pending_) {
    pending->ack.error =
        static_cast<uint16_t>(ErrorCode::kRdmaAccessDenied);
    pending->done->Set();
    window_.Release();
  }
  pending_.clear();
  for (auto& [order, pending] : pending_by_order_) {
    pending->ack.error =
        static_cast<uint16_t>(ErrorCode::kRdmaAccessDenied);
    pending->done->Set();
    window_.Release();
  }
  pending_by_order_.clear();
}

void RdmaProducer::HandleAck(const rdma::WorkCompletion& wc) {
  CtrlMsg msg = CtrlMsg::DecodeFrom(ack_bufs_[wc.wr_id].data());
  (void)qp_->PostRecv(wc.wr_id, ack_bufs_[wc.wr_id].data(), kCtrlMsgSize);
  if (msg.kind != CtrlKind::kProduceAck) return;
  std::shared_ptr<Pending> pending;
  if (config_.exclusive) {
    // Exclusive acks arrive in submission order (RC in-order delivery +
    // in-order commit processing).
    if (pending_.empty()) return;
    pending = pending_.front();
    pending_.pop_front();
  } else {
    auto it = pending_by_order_.find(msg.order);
    if (it == pending_by_order_.end()) return;
    pending = it->second;
    pending_by_order_.erase(it);
  }
  pending->ack = msg;
  if (msg.error == 0) {
    acked_records_++;
    acked_bytes_ += pending->payload_bytes;
    // Client-observed round trip includes the blocking wakeup.
    latencies_.Add(sim_.Now() - pending->sent_at +
                   fabric_.cost().cpu.wakeup_ns);
  } else {
    errors_++;
  }
  window_.Release();
  pending->done->Set();
}

sim::Co<void> RdmaProducer::RecvAckLoop(
    std::shared_ptr<bool> alive, std::shared_ptr<rdma::CompletionQueue> cq) {
  const size_t batch = static_cast<size_t>(std::max(1, config_.poll_batch));
  std::vector<rdma::WorkCompletion> wcs(batch);
  while (*alive) {
    size_t n = co_await cq->NextBatch(wcs.data(), batch);
    if (!*alive || n == 0) co_return;
    for (size_t i = 0; i < n; i++) {
      const rdma::WorkCompletion& wc = wcs[i];
      if (!wc.ok()) {
        FailAllPending();
        co_return;
      }
      if (wc.opcode != rdma::Opcode::kRecv) continue;
      co_await sim::Delay(sim_, fabric_.cost().cpu.poll_iteration_ns);
      if (!*alive) co_return;
      HandleAck(wc);
    }
  }
}

sim::Co<void> RdmaProducer::SendCqDrainer(
    std::shared_ptr<bool> alive, std::shared_ptr<rdma::CompletionQueue> cq) {
  const size_t batch = static_cast<size_t>(std::max(1, config_.poll_batch));
  std::vector<rdma::WorkCompletion> wcs(batch);
  while (*alive) {
    size_t n = co_await cq->NextBatch(wcs.data(), batch);
    if (!*alive || n == 0) co_return;
    for (size_t i = 0; i < n; i++) {
      const rdma::WorkCompletion& wc = wcs[i];
      if (wc.opcode == rdma::Opcode::kFetchAdd) {
        auto it = faa_waiters_.find(wc.wr_id);
        if (it != faa_waiters_.end()) {
          if (!wc.ok()) faa_failed_ = true;
          it->second->Set();
        }
        continue;
      }
      if (!wc.ok()) {
        // A write failed (revoked access / disconnect): the RecvAckLoop
        // error path performs the full teardown.
        errors_++;
      }
    }
  }
}

sim::Co<StatusOr<int64_t>> RdmaProducer::Produce(Slice key, Slice value) {
  co_await window_.Acquire();
  std::shared_ptr<Pending> pending;
  Status st = co_await SendOne(key, value, &pending);
  if (!st.ok()) {
    window_.Release();
    co_return st;
  }
  co_await pending->done->Wait();
  // The user thread blocks on the produce future and is woken by the ack.
  co_await sim::Delay(sim_, fabric_.cost().cpu.wakeup_ns);
  if (pending->ack.error != 0) {
    co_return Status::Aborted(
        std::string("rdma produce failed: ") +
        ErrorCodeName(static_cast<ErrorCode>(pending->ack.error)));
  }
  co_return pending->ack.value;
}

sim::Co<Status> RdmaProducer::ProduceAsync(Slice key, Slice value) {
  co_await window_.Acquire();
  std::shared_ptr<Pending> pending;
  Status st = co_await SendOne(key, value, &pending);
  if (!st.ok()) window_.Release();
  co_return st;
}

sim::Co<Status> RdmaProducer::Flush() {
  while (!pending_.empty() || !pending_by_order_.empty() ||
         window_.available() < config_.max_inflight) {
    if (!pending_.empty()) {
      auto last = pending_.back();
      co_await last->done->Wait();
    } else if (!pending_by_order_.empty()) {
      auto last = pending_by_order_.begin()->second;
      co_await last->done->Wait();
    } else {
      co_await sim::Delay(sim_, 1000);
    }
  }
  co_return Status::OK();
}

}  // namespace kd
}  // namespace kafkadirect

// RdmaConsumer: KafkaDirect's consume client (§4.4.2).
//
// Fetching is fully offloaded to the RNIC: records are pulled with
// one-sided RDMA Reads of a fixed fetch size (default 2 KiB); availability
// of new records is discovered by RDMA-reading the consumer's contiguous
// metadata-slot region on the broker — a single Read covers every
// subscribed TP (Fig. 9) and involves no broker CPU. Partially-fetched
// records are kept in a reassembly buffer until complete (§4.4.2 "fetch
// size for RDMA Reads"); immutable (sealed) files are drained to the end
// and then exchanged for the next file via a TCP access request.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "direct/control.h"
#include "direct/kd_broker.h"
#include "kafka/consumer.h"  // OwnedRecord
#include "kafka/record.h"
#include "rdma/queue_pair.h"

namespace kafkadirect {
namespace kd {

struct RdmaConsumerConfig {
  /// Bytes per RDMA Read; the paper's default (2 KiB) trades ~3 us latency
  /// against >5 GiB/s bandwidth.
  uint32_t fetch_size = 2048;

  /// Ring-buffer consume protocol (DESIGN.md §12): the broker pushes
  /// committed bytes into a consumer-registered ring MR and periodically
  /// publishes a tail pointer; the consumer drains locally and write-backs
  /// its consumed count one-sidedly. No RDMA Reads, no per-batch
  /// notifications. Requires broker rdma_consume + rdma_ring_consume.
  bool ring_consume = false;
  /// Ring data buffer size in bytes.
  uint64_t ring_capacity = 1 << 20;
  /// Write the consumed count back to the broker after this many drained
  /// bytes (space-reclamation granularity seen by the broker's pusher).
  uint64_t head_update_bytes = 64 * 1024;
};

class RdmaConsumer {
 public:
  RdmaConsumer(sim::Simulator& sim, net::Fabric& fabric, tcpnet::Network& tcp,
               net::NodeId node, RdmaConsumerConfig config = {});
  ~RdmaConsumer();

  /// TCP control channel + RC QP to the leader.
  sim::Co<Status> Connect(KafkaDirectBroker* leader);

  /// Requests RDMA read access to `tp` starting at `offset`.
  /// (Non-coroutine shim: copies `tp` before the coroutine starts, which
  /// sidesteps GCC's mishandling of temporaries bound to coroutine
  /// parameters.)
  sim::Co<Status> Subscribe(const kafka::TopicPartitionId& tp,
                            int64_t offset) {
    return SubscribeImpl(tp, offset);
  }

  /// Re-grant after a leader move (§15): drops the `tp` subscription,
  /// rebuilds the whole transport when `leader` differs from the connected
  /// broker (fresh QP + control channel; every other subscription and
  /// commit target dies with the old one), and re-subscribes at `offset` —
  /// typically the group's RDMA-committed offset, so delivery resumes
  /// exactly-once.
  sim::Co<Status> Resubscribe(KafkaDirectBroker* leader,
                              const kafka::TopicPartitionId& tp,
                              int64_t offset) {
    return ResubscribeImpl(leader, tp, offset);
  }

  /// Returns the next available complete records from `tp`, or an empty
  /// vector if none are available. Never contacts the broker CPU unless a
  /// file boundary is crossed.
  sim::Co<StatusOr<std::vector<kafka::OwnedRecord>>> Poll(
      const kafka::TopicPartitionId& tp) {
    return PollImpl(tp);
  }

  /// Refreshes the cached metadata (last readable byte, mutability) of
  /// every subscribed TP with ONE RDMA Read spanning the active slots.
  sim::Co<Status> PollMetadata();

  /// EXTENSION (§5.4 future work): obtains an RDMA-writable committed-
  /// offset slot for `group`, turning subsequent commits into one-sided
  /// ~2 us writes instead of ~160 us TCP round trips.
  sim::Co<Status> EnableRdmaCommit(const kafka::TopicPartitionId& tp,
                                   const std::string& group) {
    return EnableRdmaCommitImpl(tp, group);
  }

  /// One-sided offset commit; requires EnableRdmaCommit first.
  sim::Co<Status> CommitOffsetRdma(const kafka::TopicPartitionId& tp,
                                   const std::string& group, int64_t offset) {
    return CommitOffsetRdmaImpl(tp, group, offset);
  }

  void Close();

  uint64_t fetched_records() const { return fetched_records_; }
  uint64_t fetched_bytes() const { return fetched_bytes_; }
  uint64_t rdma_reads_issued() const { return reads_issued_; }
  uint64_t metadata_reads() const { return metadata_reads_; }
  uint64_t file_switches() const { return file_switches_; }

 private:
  struct Subscription {
    kafka::TopicPartitionId tp;
    int64_t next_offset = 0;       // next record offset to deliver
    uint32_t file_ref = 0;
    uint64_t file_addr = 0;
    uint32_t file_rkey = 0;
    uint64_t read_pos = 0;         // next file position to fetch
    uint64_t last_readable = 0;    // cached from the metadata slot
    bool is_mutable = false;
    int32_t slot_index = -1;
    std::vector<uint8_t> partial;  // reassembly buffer

    // Ring-consume state (config.ring_consume).
    bool ring = false;
    uint32_t grant_ref = 0;
    std::vector<uint8_t> ring_buf;      // broker-written data ring
    rdma::MemoryRegionPtr ring_mr;
    std::vector<uint8_t> tail_word;     // broker-written pushed-byte count
    rdma::MemoryRegionPtr tail_mr;
    uint64_t broker_head_addr = 0;      // broker-side consumed-count word
    uint32_t broker_head_rkey = 0;
    uint64_t consumed = 0;              // bytes drained from the ring
    uint64_t head_written = 0;          // last consumed value written back
  };

  sim::Co<Status> SubscribeImpl(kafka::TopicPartitionId tp, int64_t offset);
  sim::Co<Status> ResubscribeImpl(KafkaDirectBroker* leader,
                                  kafka::TopicPartitionId tp, int64_t offset);
  sim::Co<Status> EnableRdmaCommitImpl(kafka::TopicPartitionId tp,
                                       std::string group);
  sim::Co<Status> CommitOffsetRdmaImpl(kafka::TopicPartitionId tp,
                                       std::string group, int64_t offset);
  sim::Co<StatusOr<std::vector<kafka::OwnedRecord>>> PollImpl(
      kafka::TopicPartitionId tp);
  sim::Co<StatusOr<uint64_t>> RdmaRead(uint64_t remote_addr, uint32_t rkey,
                                       uint8_t* dst, uint32_t len);
  sim::Co<Status> RequestAccess(Subscription* sub, int64_t offset,
                                bool unregister_current);
  /// Ring-consume handshake: registers the ring + tail MRs and asks the
  /// broker to start pushing from `offset`.
  sim::Co<Status> RequestRingAccess(Subscription* sub, int64_t offset);
  /// Ring-mode Poll: drains [consumed, tail) from the local ring.
  sim::Co<StatusOr<std::vector<kafka::OwnedRecord>>> PollRing(
      Subscription* sub);
  /// One-sided write-back of the consumed count to the broker's head word.
  void WriteRingHead(Subscription* sub);
  /// Extracts complete batches from the reassembly buffer into records.
  Status DrainPartial(Subscription* sub,
                      std::vector<kafka::OwnedRecord>* out,
                      sim::TimeNs* work_ns);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  tcpnet::Network& tcp_;
  net::NodeId node_;
  RdmaConsumerConfig config_;
  KafkaDirectBroker* leader_ = nullptr;

  rdma::Rnic rnic_;
  std::shared_ptr<rdma::CompletionQueue> cq_;
  std::shared_ptr<rdma::QueuePair> qp_;
  net::MessageStreamPtr ctrl_;
  uint32_t broker_qp_num_ = 0;  // broker end of qp_ (ring pushes ride it)

  uint64_t slot_region_addr_ = 0;
  uint32_t slot_rkey_ = 0;
  std::vector<uint8_t> slot_shadow_;  // local copy of the slot region

  std::map<kafka::TopicPartitionId, std::unique_ptr<Subscription>> subs_;
  struct CommitTarget {
    uint64_t addr = 0;
    uint32_t rkey = 0;
    std::vector<uint8_t> staging;  // 8 B, alive across the write
  };
  std::map<std::pair<kafka::TopicPartitionId, std::string>, CommitTarget>
      commit_targets_;
  uint64_t next_wr_id_ = 1;
  uint64_t rdma_commits_ = 0;

 public:
  uint64_t rdma_commits() const { return rdma_commits_; }

 private:

  uint64_t fetched_records_ = 0;
  uint64_t fetched_bytes_ = 0;
  uint64_t reads_issued_ = 0;
  uint64_t metadata_reads_ = 0;
  uint64_t file_switches_ = 0;
  uint64_t ring_head_writes_ = 0;

 public:
  uint64_t ring_head_writes() const { return ring_head_writes_; }
};

}  // namespace kd
}  // namespace kafkadirect

// KafkaDirect in-band RDMA control plane:
//  - the 32-bit immediate-data layout of Fig. 4 ({order, file id});
//  - the 64-bit shared-produce atomic word of Fig. 5 ({order, offset});
//  - the small RDMA Send control messages (produce acks, replication
//    credits, HWM updates) that ride on already-established QPs;
//  - the shared produce-notification policy (WriteWithImm vs Write+Send,
//    static or size-adaptive) used by both the producer and the fig07
//    microbench so the paper figure and the ablation share one code path.
#pragma once

#include <cstdint>

#include "common/byte_order.h"
#include "rdma/verbs.h"

namespace kafkadirect {
namespace kd {

// --- produce-notification policy (Fig. 7 / DESIGN.md §12) ---

/// How the broker learns that a one-sided produce Write landed.
enum class NotifyMode : uint8_t {
  kWriteImm = 0,   // WriteWithImm: one WR, imm carries {order, file_id}
  kWriteSend = 1,  // unsignaled Write + separate Send with a CtrlMsg
  kAdaptive = 2,   // per-message: kWriteImm below the crossover, else
                   // kWriteSend (large writes amortize the extra Send and
                   // gain the richer 24-byte metadata channel)
};

/// The WRs a given (mode, write length) pair produces. `data_signaled`
/// refers to the baseline every-WR-signaled discipline; selective
/// signaling further thins it (rdma_producer.cc).
struct NotifyPlan {
  rdma::Opcode data_opcode = rdma::Opcode::kWriteWithImm;
  bool separate_send = false;  // Write+Send: data WR unsignaled, the Send
                               // carries the notification (and the signal)
};

inline NotifyPlan PlanNotification(NotifyMode mode, uint64_t write_len,
                                   uint32_t crossover_bytes) {
  bool use_imm;
  switch (mode) {
    case NotifyMode::kWriteImm: use_imm = true; break;
    case NotifyMode::kWriteSend: use_imm = false; break;
    case NotifyMode::kAdaptive: use_imm = write_len < crossover_bytes; break;
    default: use_imm = true; break;
  }
  NotifyPlan plan;
  plan.data_opcode =
      use_imm ? rdma::Opcode::kWriteWithImm : rdma::Opcode::kWrite;
  plan.separate_send = !use_imm;
  return plan;
}

// --- Fig. 4: immediate data = 16-bit order | 16-bit file identifier ---

inline uint32_t EncodeImm(uint16_t order, uint16_t file_id) {
  return (static_cast<uint32_t>(order) << 16) | file_id;
}
inline uint16_t ImmOrder(uint32_t imm) {
  return static_cast<uint16_t>(imm >> 16);
}
inline uint16_t ImmFileId(uint32_t imm) {
  return static_cast<uint16_t>(imm & 0xFFFF);
}

// --- Fig. 5: 64-bit atomic word = 16-bit order | 48-bit file offset ---

constexpr uint64_t kOffsetMask = (1ull << 48) - 1;

inline uint64_t EncodeAtomicWord(uint16_t order, uint64_t offset) {
  return (static_cast<uint64_t>(order) << 48) | (offset & kOffsetMask);
}
inline uint16_t AtomicOrder(uint64_t word) {
  return static_cast<uint16_t>(word >> 48);
}
inline uint64_t AtomicOffset(uint64_t word) { return word & kOffsetMask; }

/// The FAA addend that claims one produce slot of `size` bytes: increments
/// the order field by one and the offset field by the record size.
inline uint64_t FaaClaim(uint64_t size) { return (1ull << 48) + size; }

// --- control messages (fixed 24-byte RDMA Sends) ---

enum class CtrlKind : uint32_t {
  kProduceAck = 1,     // broker -> producer: {order, error, base_offset}
  kCredit = 2,         // follower -> leader: {granted, follower_leo}
  kHwmUpdate = 3,      // leader -> follower: {high_watermark}
  kProduceNotify = 4,  // producer -> broker: Write+Send notification
                       // {order, aux=file_id, value=write length} (§4.2.2)
  // --- QP-multiplexing stream lifecycle (DESIGN.md §14) ---
  kMuxOpen = 5,   // client -> broker: open `aux` logical streams starting
                  // at `stream` on this transport QP (aux == 0 -> 1)
  kMuxGrant = 6,  // broker -> client: admission verdict for `stream`;
                  // error == 0: order = per-stream credits, value =
                  //   committed-record count (reconnect resync anchor);
                  // error != 0: rejected, value = suggested retry-after ns
  kMuxClose = 7,  // client -> broker: close `aux` streams from `stream`
};

constexpr uint32_t kCtrlMsgSize = 24;

struct CtrlMsg {
  CtrlKind kind = CtrlKind::kProduceAck;
  uint16_t order = 0;
  uint16_t error = 0;      // 0 = OK; nonzero = kafka::ErrorCode
  int64_t value = 0;       // base offset / LEO / HWM
  uint32_t aux = 0;        // credits granted
  uint32_t stream = 0;     // logical client stream id (0 = unmuxed); rides
                           // in the 4 bytes that were reserved-zero before
                           // §14, so the unmuxed wire format is unchanged

  void EncodeTo(uint8_t* dst) const {
    EncodeFixed32(dst, static_cast<uint32_t>(kind));
    EncodeFixed16(dst + 4, order);
    EncodeFixed16(dst + 6, error);
    EncodeFixed64(dst + 8, static_cast<uint64_t>(value));
    EncodeFixed32(dst + 16, aux);
    EncodeFixed32(dst + 20, stream);
  }
  static CtrlMsg DecodeFrom(const uint8_t* src) {
    CtrlMsg m;
    m.kind = static_cast<CtrlKind>(DecodeFixed32(src));
    m.order = DecodeFixed16(src + 4);
    m.error = DecodeFixed16(src + 6);
    m.value = static_cast<int64_t>(DecodeFixed64(src + 8));
    m.aux = DecodeFixed32(src + 16);
    m.stream = DecodeFixed32(src + 20);
    return m;
  }
};

}  // namespace kd
}  // namespace kafkadirect

#include "direct/rdma_consumer.h"

#include <algorithm>
#include <cstring>

#include "sim/awaitable.h"

namespace kafkadirect {
namespace kd {

using kafka::ErrorCode;
using kafka::OwnedRecord;
using kafka::RecordBatchView;

RdmaConsumer::RdmaConsumer(sim::Simulator& sim, net::Fabric& fabric,
                           tcpnet::Network& tcp, net::NodeId node,
                           RdmaConsumerConfig config)
    : sim_(sim), fabric_(fabric), tcp_(tcp), node_(node), config_(config),
      rnic_(sim, fabric, node),
      slot_shadow_(ConsumerSession::kNumSlots * ConsumerSession::kSlotSize,
                   0) {}

RdmaConsumer::~RdmaConsumer() = default;

void RdmaConsumer::Close() {
  if (qp_ != nullptr) qp_->Disconnect();
  // Wake any coroutine parked on the CQ (ring-consume pollers) so its
  // frame completes instead of leaking (coroutine-aware teardown, §14).
  if (cq_ != nullptr) cq_->Shutdown();
  if (ctrl_ != nullptr) ctrl_->Close();
}

sim::Co<Status> RdmaConsumer::Connect(KafkaDirectBroker* leader) {
  leader_ = leader;
  auto ctrl_or =
      co_await tcp_.Connect(node_, leader->node(), kafka::kKafkaPort);
  if (!ctrl_or.ok()) co_return ctrl_or.status();
  ctrl_ = ctrl_or.value();
  cq_ = rnic_.CreateCq();
  qp_ = rnic_.CreateQp(cq_, cq_);
  auto broker_qp = co_await leader->AcceptRdma(qp_);
  if (!broker_qp.ok()) co_return broker_qp.status();
  broker_qp_num_ = broker_qp.value()->qp_num();
  co_return Status::OK();
}

sim::Co<Status> RdmaConsumer::SubscribeImpl(kafka::TopicPartitionId tp,
                                            int64_t offset) {
  auto sub = std::make_unique<Subscription>();
  sub->tp = tp;
  sub->next_offset = offset;
  Subscription* raw = sub.get();
  subs_[tp] = std::move(sub);
  if (config_.ring_consume) {
    co_return co_await RequestRingAccess(raw, offset);
  }
  co_return co_await RequestAccess(raw, offset,
                                   /*unregister_current=*/false);
}

sim::Co<Status> RdmaConsumer::ResubscribeImpl(KafkaDirectBroker* leader,
                                              kafka::TopicPartitionId tp,
                                              int64_t offset) {
  subs_.erase(tp);
  if (leader != leader_) {
    // Leader moved: the old transport (QP, control channel, slot region,
    // one-sided commit targets) is useless against the new broker. Tear
    // everything down and rebuild; any other subscriptions must be
    // re-granted by their owners the same way.
    Close();
    qp_ = nullptr;
    cq_ = nullptr;
    ctrl_ = nullptr;
    slot_region_addr_ = 0;
    slot_rkey_ = 0;
    subs_.clear();
    commit_targets_.clear();
    Status cs = co_await Connect(leader);
    if (!cs.ok()) co_return cs;
  }
  co_return co_await SubscribeImpl(tp, offset);
}

sim::Co<Status> RdmaConsumer::RequestRingAccess(Subscription* sub,
                                                int64_t offset) {
  sub->ring = true;
  sub->ring_buf.assign(config_.ring_capacity, 0);
  sub->tail_word.assign(8, 0);
  // Register the ring and the 8-byte tail word for broker writes
  // (mmap + ibv_reg_mr, one-time).
  co_await sim::Delay(sim_, rnic_.RegistrationCost(sub->ring_buf.size()) +
                                rnic_.RegistrationCost(8));
  auto ring_mr = rnic_.RegisterMemory(sub->ring_buf.data(),
                                      sub->ring_buf.size(),
                                      rdma::kAccessRemoteWrite);
  if (!ring_mr.ok()) co_return ring_mr.status();
  sub->ring_mr = ring_mr.value();
  auto tail_mr = rnic_.RegisterMemory(sub->tail_word.data(), 8,
                                      rdma::kAccessRemoteWrite);
  if (!tail_mr.ok()) co_return tail_mr.status();
  sub->tail_mr = tail_mr.value();

  kafka::RdmaRingConsumeAccessRequest req;
  req.tp = sub->tp;
  req.offset = offset;
  req.broker_qp = broker_qp_num_;
  req.ring_addr = sub->ring_mr->addr();
  req.ring_rkey = sub->ring_mr->rkey();
  req.ring_capacity = sub->ring_buf.size();
  req.tail_addr = sub->tail_mr->addr();
  req.tail_rkey = sub->tail_mr->rkey();
  KD_CO_RETURN_IF_ERROR(co_await ctrl_->Send(Encode(req), false));
  auto frame = co_await ctrl_->Recv();
  if (!frame.ok()) co_return frame.status();
  kafka::RdmaRingConsumeAccessResponse resp;
  KD_CO_RETURN_IF_ERROR(kafka::Decode(Slice(frame.value()), &resp));
  if (resp.error != ErrorCode::kNone) {
    co_return Status::PermissionDenied(
        std::string("RDMA ring consume access denied: ") +
        ErrorCodeName(resp.error));
  }
  sub->grant_ref = resp.grant_ref;
  sub->broker_head_addr = resp.head_addr;
  sub->broker_head_rkey = resp.head_rkey;
  sub->partial.clear();
  co_return Status::OK();
}

sim::Co<Status> RdmaConsumer::RequestAccess(Subscription* sub, int64_t offset,
                                            bool unregister_current) {
  if (unregister_current) {
    // Tell the broker the fully-read file can be unregistered to reduce
    // its memory usage (§4.4.2).
    kafka::RdmaUnregisterRequest ureq;
    ureq.tp = sub->tp;
    ureq.file_ref = sub->file_ref;
    KD_CO_RETURN_IF_ERROR(co_await ctrl_->Send(Encode(ureq), false));
    auto uframe = co_await ctrl_->Recv();
    if (!uframe.ok()) co_return uframe.status();
    file_switches_++;
  }
  kafka::RdmaConsumeAccessRequest req;
  req.tp = sub->tp;
  req.offset = offset;
  KD_CO_RETURN_IF_ERROR(co_await ctrl_->Send(Encode(req), false));
  auto frame = co_await ctrl_->Recv();
  if (!frame.ok()) co_return frame.status();
  kafka::RdmaConsumeAccessResponse resp;
  KD_CO_RETURN_IF_ERROR(kafka::Decode(Slice(frame.value()), &resp));
  if (resp.error != ErrorCode::kNone) {
    co_return Status::PermissionDenied(
        std::string("RDMA consume access denied: ") +
        ErrorCodeName(resp.error));
  }
  sub->file_ref = resp.file_ref;
  sub->file_addr = resp.addr;
  sub->file_rkey = resp.rkey;
  sub->read_pos = resp.start_pos;
  sub->last_readable = resp.last_readable;
  sub->is_mutable = resp.is_mutable;
  sub->slot_index = resp.is_mutable ? static_cast<int32_t>(resp.slot_index)
                                    : -1;
  sub->partial.clear();
  if (resp.is_mutable) {
    slot_region_addr_ = resp.slot_region_addr;
    slot_rkey_ = resp.slot_rkey;
  }
  co_return Status::OK();
}

sim::Co<Status> RdmaConsumer::EnableRdmaCommitImpl(
    kafka::TopicPartitionId tp, std::string group) {
  kafka::RdmaCommitAccessRequest req;
  req.tp = tp;
  req.group = group;
  KD_CO_RETURN_IF_ERROR(co_await ctrl_->Send(Encode(req), false));
  auto frame = co_await ctrl_->Recv();
  if (!frame.ok()) co_return frame.status();
  kafka::RdmaCommitAccessResponse resp;
  KD_CO_RETURN_IF_ERROR(kafka::Decode(Slice(frame.value()), &resp));
  if (resp.error != ErrorCode::kNone) {
    co_return Status::PermissionDenied("RDMA commit access denied");
  }
  CommitTarget target;
  target.addr = resp.slot_addr;
  target.rkey = resp.slot_rkey;
  target.staging.resize(8);
  commit_targets_[{tp, group}] = std::move(target);
  co_return Status::OK();
}

sim::Co<Status> RdmaConsumer::CommitOffsetRdmaImpl(kafka::TopicPartitionId tp,
                                                   std::string group,
                                                   int64_t offset) {
  auto it = commit_targets_.find({tp, group});
  if (it == commit_targets_.end()) {
    co_return Status::FailedPrecondition(
        "EnableRdmaCommit before CommitOffsetRdma");
  }
  CommitTarget& target = it->second;
  EncodeFixed64(target.staging.data(), static_cast<uint64_t>(offset));
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = rdma::Opcode::kWrite;
  wr.local_addr = target.staging.data();
  wr.length = 8;
  wr.remote_addr = target.addr;
  wr.rkey = target.rkey;
  KD_CO_RETURN_IF_ERROR(qp_->PostSend(wr));
  auto wc = co_await cq_->Next();
  co_await sim::Delay(sim_, fabric_.cost().cpu.poll_iteration_ns);
  if (!wc.has_value() || !wc->ok()) {
    co_return Status::Disconnected("RDMA commit failed");
  }
  rdma_commits_++;
  co_return Status::OK();
}

sim::Co<StatusOr<uint64_t>> RdmaConsumer::RdmaRead(uint64_t remote_addr,
                                                   uint32_t rkey,
                                                   uint8_t* dst,
                                                   uint32_t len) {
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = rdma::Opcode::kRead;
  wr.local_addr = dst;
  wr.length = len;
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  KD_CO_RETURN_IF_ERROR(qp_->PostSend(wr));
  reads_issued_++;
  // The consumer issues reads one at a time and busy-polls its CQ.
  auto wc = co_await cq_->Next();
  co_await sim::Delay(sim_, fabric_.cost().cpu.poll_iteration_ns);
  if (!wc.has_value() || !wc->ok()) {
    co_return Status::Disconnected("RDMA read failed");
  }
  co_return static_cast<uint64_t>(wc->byte_len);
}

sim::Co<Status> RdmaConsumer::PollMetadata() {
  int32_t lo = -1, hi = -1;
  for (auto& [tp, sub] : subs_) {
    if (sub->slot_index < 0) continue;
    if (lo < 0 || sub->slot_index < lo) lo = sub->slot_index;
    if (sub->slot_index > hi) hi = sub->slot_index;
  }
  if (lo < 0) co_return Status::OK();  // no mutable files subscribed
  // One RDMA Read covering the smallest contiguous region that contains
  // every active slot (Fig. 9) — free slots in between are read too.
  uint32_t span = static_cast<uint32_t>(hi - lo + 1) *
                  ConsumerSession::kSlotSize;
  uint64_t base = slot_region_addr_ +
                  static_cast<uint64_t>(lo) * ConsumerSession::kSlotSize;
  auto read = co_await RdmaRead(
      base, slot_rkey_,
      slot_shadow_.data() + lo * ConsumerSession::kSlotSize, span);
  if (!read.ok()) co_return read.status();
  metadata_reads_++;
  for (auto& [tp, sub] : subs_) {
    if (sub->slot_index < 0) continue;
    const uint8_t* slot =
        slot_shadow_.data() + sub->slot_index * ConsumerSession::kSlotSize;
    uint64_t readable = SlotLastReadable(slot);
    if (readable > sub->last_readable) sub->last_readable = readable;
    sub->is_mutable = SlotMutable(slot);
  }
  co_return Status::OK();
}

Status RdmaConsumer::DrainPartial(Subscription* sub,
                                  std::vector<OwnedRecord>* out,
                                  sim::TimeNs* work_ns) {
  const CostModel& cm = fabric_.cost();
  while (true) {
    Slice buffered(sub->partial);
    auto size_or = RecordBatchView::PeekBatchSize(buffered);
    if (!size_or.ok()) break;  // size prefix incomplete
    if (size_or.value() > buffered.size()) break;  // batch incomplete
    // Integrity check of the fetched data (the RDMA consumer "must check
    // the integrity of the fetched data", §5.3).
    auto view_or = RecordBatchView::Parse(buffered);
    if (!view_or.ok()) return view_or.status();
    const RecordBatchView& view = view_or.value();
    *work_ns += cm.CrcCost(view.total_size());
    // SLO audit: tenant = batch producer_id, delay = consume virtual time
    // minus the record's produce timestamp. One lookup per batch.
    obs::TenantSlo* tenant =
        fabric_.obs().slo.Get(sub->tp.topic, view.producer_id());
    const sim::TimeNs now = sim_.Now();
    Status st = view.ForEach([&](const kafka::RecordView& r) {
      if (r.offset < sub->next_offset) return;  // prefix before position
      OwnedRecord rec;
      rec.offset = r.offset;
      rec.timestamp = r.timestamp;
      // The copy from the off-heap RDMA buffer into the Java-heap buffer
      // returned to the application (~2 us of the 4.2 us, §5.3).
      rec.key = r.key.ToString();
      rec.value = r.value.ToString();
      fetched_bytes_ += r.key.size() + r.value.size();
      tenant->Observe(now - r.timestamp, r.key.size() + r.value.size(), now);
      *work_ns += static_cast<sim::TimeNs>(
          cm.kafka.consumer_copy_ns_per_byte *
          static_cast<double>(r.key.size() + r.value.size()));
      out->push_back(std::move(rec));
    });
    if (!st.ok()) return st;
    sub->next_offset = std::max(sub->next_offset, view.last_offset() + 1);
    sub->partial.erase(sub->partial.begin(),
                       sub->partial.begin() + view.total_size());
  }
  return Status::OK();
}

sim::Co<StatusOr<std::vector<OwnedRecord>>> RdmaConsumer::PollImpl(
    kafka::TopicPartitionId tp) {
  auto it = subs_.find(tp);
  if (it == subs_.end()) {
    co_return Status::NotFound("not subscribed: " + tp.ToString());
  }
  Subscription* sub = it->second.get();
  if (sub->ring) co_return co_await PollRing(sub);
  const CostModel& cm = fabric_.cost();
  std::vector<OwnedRecord> out;
  sim::TimeNs work_ns = cm.kafka.rdma_consumer_api_ns;

  for (int round = 0; round < 1024 && out.empty(); round++) {
    uint64_t available = sub->last_readable - sub->read_pos;
    if (available == 0) {
      if (!sub->is_mutable) {
        // Sealed file fully consumed: exchange it for the next file.
        KD_CO_RETURN_IF_ERROR(co_await RequestAccess(
            sub, sub->next_offset, /*unregister_current=*/true));
        continue;
      }
      // Check for new records by reading the metadata slots — no broker
      // CPU involved (§4.4.2).
      KD_CO_RETURN_IF_ERROR(co_await PollMetadata());
      if (sub->last_readable == sub->read_pos) {
        if (!sub->is_mutable) continue;  // just sealed: switch files
        break;                           // genuinely nothing new
      }
      continue;
    }
    // Fixed fetch size by default; when a partial batch header is already
    // buffered, size the read to complete that batch (the adaptive scheme
    // §4.4.2 suggests for large records).
    uint64_t len = std::min<uint64_t>(config_.fetch_size, available);
    auto need_or = RecordBatchView::PeekBatchSize(Slice(sub->partial));
    if (need_or.ok() && need_or.value() > sub->partial.size()) {
      uint64_t remaining_batch = need_or.value() - sub->partial.size();
      len = std::min<uint64_t>(std::max<uint64_t>(len, remaining_batch),
                               available);
    }
    size_t old_size = sub->partial.size();
    sub->partial.resize(old_size + len);
    auto read = co_await RdmaRead(sub->file_addr + sub->read_pos,
                                  sub->file_rkey,
                                  sub->partial.data() + old_size,
                                  static_cast<uint32_t>(len));
    if (!read.ok()) co_return read.status();
    sub->read_pos += len;
    KD_CO_RETURN_IF_ERROR(DrainPartial(sub, &out, &work_ns));
  }
  if (!out.empty()) {
    fetched_records_ += out.size();
    co_await sim::Delay(sim_, work_ns);
  }
  co_return out;
}

sim::Co<StatusOr<std::vector<OwnedRecord>>> RdmaConsumer::PollRing(
    Subscription* sub) {
  const CostModel& cm = fabric_.cost();
  const uint64_t cap = sub->ring_buf.size();
  std::vector<OwnedRecord> out;
  sim::TimeNs work_ns = cm.kafka.rdma_consumer_api_ns;
  for (int round = 0; round < 1024 && out.empty(); round++) {
    // The tail word is RNIC-written; checking it is a local load.
    uint64_t tail = DecodeFixed64(sub->tail_word.data());
    if (tail == sub->consumed) {
      co_await sim::Delay(sim_, cm.cpu.poll_iteration_ns);
      tail = DecodeFixed64(sub->tail_word.data());
      if (tail == sub->consumed) break;  // genuinely nothing new
    }
    uint64_t n = tail - sub->consumed;
    size_t old_size = sub->partial.size();
    sub->partial.resize(old_size + n);
    // Drain the ring into the reassembly buffer (a wrap costs at most two
    // memcpys), then free the space with a one-sided head write-back.
    uint64_t off = sub->consumed % cap;
    uint64_t first = std::min(n, cap - off);
    std::memcpy(sub->partial.data() + old_size, sub->ring_buf.data() + off,
                first);
    if (n > first) {
      std::memcpy(sub->partial.data() + old_size + first,
                  sub->ring_buf.data(), n - first);
    }
    work_ns += static_cast<sim::TimeNs>(cm.kafka.consumer_copy_ns_per_byte *
                                        static_cast<double>(n));
    sub->consumed += n;
    // Report drained space before the unreported span can stall the
    // broker's pusher (at the latest after a quarter ring).
    if (sub->consumed - sub->head_written >=
        std::min<uint64_t>(config_.head_update_bytes, cap / 4)) {
      WriteRingHead(sub);
    }
    KD_CO_RETURN_IF_ERROR(DrainPartial(sub, &out, &work_ns));
  }
  if (!out.empty()) {
    fetched_records_ += out.size();
    co_await sim::Delay(sim_, work_ns);
  }
  co_return out;
}

void RdmaConsumer::WriteRingHead(Subscription* sub) {
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = rdma::Opcode::kWrite;
  wr.signaled = false;  // fire-and-forget; no CQE to drain
  wr.send_inline = true;
  EncodeFixed64(wr.inline_data, sub->consumed);
  wr.length = 8;
  wr.remote_addr = sub->broker_head_addr;
  wr.rkey = sub->broker_head_rkey;
  if (qp_->PostSend(wr).ok()) {
    sub->head_written = sub->consumed;
    ring_head_writes_++;
  }
}

}  // namespace kd
}  // namespace kafkadirect

// RdmaProducer: KafkaDirect's produce client (§4.2.2).
//
// Exclusive mode: the single producer tracks the file write position
// locally and pipelines WriteWithImm requests straight into the head file.
// Shared mode: each produce first claims a region with an RDMA
// Fetch-and-Add on the broker's {order, offset} word (Fig. 5), detects file
// overflow from the 48-bit offset, then writes with the claimed order in
// the immediate data (Fig. 4).
//
// The broker acknowledges commits with small RDMA Sends on the same QP;
// with replication enabled the ack arrives only once the record is fully
// replicated, matching the paper's latency methodology.
#pragma once

#include <deque>
#include <memory>

#include "common/histogram.h"
#include "direct/control.h"
#include "direct/kd_broker.h"
#include "kafka/record.h"
#include "rdma/queue_pair.h"
#include "sim/semaphore.h"

namespace kafkadirect {
namespace kd {

struct RdmaProducerConfig {
  bool exclusive = true;
  int max_inflight = 1;
  uint64_t producer_id = 0;
  /// §4.2.2 "the choice of notification method": false = WriteWithImm (the
  /// paper's pick, lowest latency); true = a plain RDMA Write followed by
  /// a Send carrying the metadata (supports >32 bits of metadata).
  bool write_send_notification = false;
  /// Max completions drained per CQ wakeup in the ack/send-CQ loops.
  /// 1 (default) polls one CQE per wakeup and is schedule-identical to the
  /// pre-batching behaviour; >1 amortizes the wakeup over a batch.
  int poll_batch = 1;
  /// --- Datapath-protocol upgrades (DESIGN.md §12). Default off / 1:
  /// schedule- and byte-identical to the paper figures. ---
  /// Selective signaling: only every Nth produce notification WR is posted
  /// signaled; the QP reclaims unsignaled SQ slots lazily on the next CQE
  /// (FAA claims stay signaled — their result is awaited). Clamped to
  /// max_send_wr/4 so a signaled WR always exists within a full SQ.
  int signal_interval = 1;
  /// Notification policy (control.h PlanNotification). kWriteImm is the
  /// paper's default; kAdaptive picks WriteWithImm below
  /// `notify_crossover_bytes` and Write+Send at or above it. The legacy
  /// `write_send_notification` flag forces kWriteSend when set.
  NotifyMode notify_mode = NotifyMode::kWriteImm;
  uint32_t notify_crossover_bytes = 4096;
};

class RdmaProducer {
 public:
  RdmaProducer(sim::Simulator& sim, net::Fabric& fabric,
               tcpnet::Network& tcp, net::NodeId node,
               RdmaProducerConfig config);
  ~RdmaProducer();

  /// Full connection setup: TCP control channel to the leader, RC QP
  /// establishment (CM exchange), and the "get RDMA produce address"
  /// request.
  sim::Co<Status> Connect(KafkaDirectBroker* leader,
                          const kafka::TopicPartitionId& tp) {
    return ConnectImpl(leader, tp);
  }

  /// Synchronous produce: resolves when the broker's commit ack arrives.
  sim::Co<StatusOr<int64_t>> Produce(Slice key, Slice value);

  /// Pipelined produce: waits only for a window slot.
  sim::Co<Status> ProduceAsync(Slice key, Slice value);

  /// Waits for all outstanding produce requests to be acknowledged.
  sim::Co<Status> Flush();

  void Close();

  Histogram& latencies() { return latencies_; }
  uint64_t acked_records() const { return acked_records_; }
  uint64_t acked_bytes() const { return acked_bytes_; }
  uint64_t errors() const { return errors_; }
  uint64_t rotations() const { return rotations_; }
  uint64_t faa_issued() const { return faa_issued_; }

 private:
  struct Pending {
    uint16_t order = 0;
    sim::TimeNs sent_at = 0;
    uint64_t payload_bytes = 0;
    std::vector<uint8_t> batch;   // staging buffer, alive until acked
    std::vector<uint8_t> notify;  // Write+Send metadata buffer
    std::shared_ptr<sim::Event> done;
    CtrlMsg ack;
    bool write_failed = false;
  };

  sim::Co<Status> ConnectImpl(KafkaDirectBroker* leader,
                              kafka::TopicPartitionId tp);
  /// Application-thread half of a produce: API entry + defensive copy +
  /// (exclusive mode) position assignment; hands off to SenderStage.
  sim::Co<Status> SendOne(Slice key, Slice value,
                          std::shared_ptr<Pending>* out);
  /// Sender-thread half: handoff, (shared mode) FAA claim, ordered post.
  /// Detached and lazily started: `sim` and `handoff` are parameters
  /// (copied at call time) because the producer may be destroyed before
  /// the first resume; `alive` is checked before any member access.
  static sim::Co<void> SenderStage(sim::Simulator& sim, sim::TimeNs handoff,
                                   RdmaProducer* self,
                                   std::shared_ptr<bool> alive,
                                   std::shared_ptr<Pending> pending,
                                   uint64_t pos);
  /// Re-requests access (initial, after rotation, or after revocation).
  /// `rotate_target` is the end of in-range claims the producer observed.
  sim::Co<Status> RequestAccess(uint16_t stale_file_id,
                                uint64_t rotate_target = 0);
  /// Shared mode: claims {order, offset}; handles overflow by rotating.
  sim::Co<StatusOr<uint64_t>> ClaimRegion(uint64_t size);
  /// Detached loops: they co-own their CQ and check `alive` after every
  /// resume so a destroyed producer is never touched.
  sim::Co<void> RecvAckLoop(std::shared_ptr<bool> alive,
                            std::shared_ptr<rdma::CompletionQueue> cq);
  sim::Co<void> SendCqDrainer(std::shared_ptr<bool> alive,
                              std::shared_ptr<rdma::CompletionQueue> cq);
  /// Fails all outstanding produces (CQ error teardown).
  void FailAllPending();
  /// Decodes one ack CQE, reposts its recv buffer, resolves the pending.
  void HandleAck(const rdma::WorkCompletion& wc);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  tcpnet::Network& tcp_;
  net::NodeId node_;
  RdmaProducerConfig config_;
  kafka::TopicPartitionId tp_;
  KafkaDirectBroker* leader_ = nullptr;

  rdma::Rnic rnic_;
  std::shared_ptr<rdma::CompletionQueue> send_cq_;
  std::shared_ptr<rdma::CompletionQueue> recv_cq_;
  std::shared_ptr<rdma::QueuePair> qp_;
  net::MessageStreamPtr ctrl_;
  std::vector<std::vector<uint8_t>> ack_bufs_;

  // Current file grant.
  uint16_t file_id_ = 0;
  uint64_t file_addr_ = 0;
  uint32_t file_rkey_ = 0;
  uint64_t file_capacity_ = 0;
  uint64_t write_pos_ = 0;        // exclusive mode local tracking
  uint64_t atomic_addr_ = 0;
  uint32_t atomic_rkey_ = 0;

  sim::Semaphore window_;
  std::deque<std::shared_ptr<Pending>> pending_;
  std::map<uint16_t, std::shared_ptr<Pending>> pending_by_order_;
  std::unique_ptr<sim::AsyncMutex> claim_mu_;  // serializes shared claims
  std::unique_ptr<sim::AsyncMutex> post_mu_;   // keeps posts in order
  std::unique_ptr<sim::AsyncMutex> ctrl_mu_;   // one access request at a time
  /// FAA completions routed by wr_id.
  std::map<uint64_t, std::shared_ptr<sim::Event>> faa_waiters_;
  std::map<uint64_t, std::shared_ptr<std::vector<uint8_t>>> faa_results_;
  uint64_t next_wr_id_ = 1;

  Histogram latencies_;
  uint64_t acked_records_ = 0;
  uint64_t acked_bytes_ = 0;
  uint64_t errors_ = 0;
  uint64_t rotations_ = 0;
  uint64_t faa_issued_ = 0;
  uint32_t broker_qp_num_ = 0;
  /// Selective signaling: effective interval (config clamped at Connect)
  /// and the running count of notification WRs used to pick the Nth.
  int signal_every_ = 1;
  uint64_t notify_seq_ = 0;
  /// Notification-mix counters (kd.direct.notify.*): how often each
  /// notification shape was chosen, so the adaptive policy is observable.
  obs::Counter* notify_imm_ = nullptr;
  obs::Counter* notify_send_ = nullptr;
  bool closed_ = false;
  bool faa_failed_ = false;
  kafka::ErrorCode return_error_ = kafka::ErrorCode::kNone;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace kd
}  // namespace kafkadirect

// Little-endian fixed-width encode/decode helpers plus a bounds-checked
// binary reader/writer used by the Kafka wire protocol and record format.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace kafkadirect {

inline void EncodeFixed16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

inline void EncodeFixed32(uint8_t* dst, uint32_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
  dst[2] = static_cast<uint8_t>(v >> 16);
  dst[3] = static_cast<uint8_t>(v >> 24);
}

inline void EncodeFixed64(uint8_t* dst, uint64_t v) {
  for (int i = 0; i < 8; i++) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint16_t DecodeFixed16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0]) |
         static_cast<uint16_t>(static_cast<uint16_t>(src[1]) << 8);
}

inline uint32_t DecodeFixed32(const uint8_t* src) {
  return static_cast<uint32_t>(src[0]) |
         (static_cast<uint32_t>(src[1]) << 8) |
         (static_cast<uint32_t>(src[2]) << 16) |
         (static_cast<uint32_t>(src[3]) << 24);
}

inline uint64_t DecodeFixed64(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v |= static_cast<uint64_t>(src[i]) << (8 * i);
  return v;
}

/// Append-only binary writer over a growable byte vector.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(size_t reserve) { buf_.reserve(reserve); }

  /// Writes into `reuse` (cleared first), typically a pooled buffer whose
  /// capacity survives from a previous message of similar size.
  BinaryWriter(std::vector<uint8_t> reuse, size_t reserve)
      : buf_(std::move(reuse)) {
    buf_.clear();
    buf_.reserve(reserve);
  }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) {
    size_t n = buf_.size();
    buf_.resize(n + 2);
    EncodeFixed16(&buf_[n], v);
  }
  void PutU32(uint32_t v) {
    size_t n = buf_.size();
    buf_.resize(n + 4);
    EncodeFixed32(&buf_[n], v);
  }
  void PutU64(uint64_t v) {
    size_t n = buf_.size();
    buf_.resize(n + 8);
    EncodeFixed64(&buf_[n], v);
  }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  /// Length-prefixed (u32) byte string.
  void PutBytes(Slice s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s);
  }
  void PutString(const std::string& s) { PutBytes(Slice(s)); }

  /// Raw bytes, no length prefix.
  void PutRaw(Slice s) {
    buf_.insert(buf_.end(), s.data(), s.data() + s.size());
  }

  /// Overwrites 4 bytes at an absolute position (for back-patching lengths).
  void PatchU32(size_t pos, uint32_t v) { EncodeFixed32(&buf_[pos], v); }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked sequential reader over a Slice.
class BinaryReader {
 public:
  explicit BinaryReader(Slice data) : data_(data) {}

  Status GetU8(uint8_t* out) {
    KD_RETURN_IF_ERROR(Need(1));
    *out = data_[pos_];
    pos_ += 1;
    return Status::OK();
  }
  Status GetU16(uint16_t* out) {
    KD_RETURN_IF_ERROR(Need(2));
    *out = DecodeFixed16(data_.data() + pos_);
    pos_ += 2;
    return Status::OK();
  }
  Status GetU32(uint32_t* out) {
    KD_RETURN_IF_ERROR(Need(4));
    *out = DecodeFixed32(data_.data() + pos_);
    pos_ += 4;
    return Status::OK();
  }
  Status GetU64(uint64_t* out) {
    KD_RETURN_IF_ERROR(Need(8));
    *out = DecodeFixed64(data_.data() + pos_);
    pos_ += 8;
    return Status::OK();
  }
  Status GetI32(int32_t* out) {
    uint32_t v;
    KD_RETURN_IF_ERROR(GetU32(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }
  Status GetI64(int64_t* out) {
    uint64_t v;
    KD_RETURN_IF_ERROR(GetU64(&v));
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }

  /// Length-prefixed byte string; returns a view into the underlying data.
  Status GetBytes(Slice* out) {
    uint32_t len;
    KD_RETURN_IF_ERROR(GetU32(&len));
    KD_RETURN_IF_ERROR(Need(len));
    *out = data_.SubSlice(pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Status GetString(std::string* out) {
    Slice s;
    KD_RETURN_IF_ERROR(GetBytes(&s));
    *out = s.ToString();
    return Status::OK();
  }
  /// Raw bytes of a known length; returns a view.
  Status GetRaw(size_t len, Slice* out) {
    KD_RETURN_IF_ERROR(Need(len));
    *out = data_.SubSlice(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::OutOfRange("binary reader: truncated input");
    }
    return Status::OK();
  }

  Slice data_;
  size_t pos_ = 0;
};

}  // namespace kafkadirect

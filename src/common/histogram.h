// Latency histogram with exact percentiles (stores samples; benches use
// bounded sample counts so memory stays small).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace kafkadirect {

/// Collects int64 samples (typically nanoseconds) and reports order
/// statistics. Not thread-safe; the simulator is single-threaded.
class Histogram {
 public:
  void Add(int64_t v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  int64_t Min() const;
  int64_t Max() const;
  double Mean() const;
  /// p in [0, 100]; nearest-rank percentile. Returns 0 on empty.
  int64_t Percentile(double p) const;
  int64_t Median() const { return Percentile(50.0); }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  /// One-line summary "count=.. min=.. p50=.. p99=.. max=.." in microseconds
  /// (input assumed nanoseconds).
  std::string SummaryUs() const;

  /// Raw samples (unsorted order unspecified); used to merge histograms.
  const std::vector<int64_t>& samples() const { return samples_; }
  void Merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

 private:
  void Sort() const;

  mutable std::vector<int64_t> samples_;
  mutable bool sorted_ = false;
};

}  // namespace kafkadirect

// Latency histogram with exact percentiles (stores samples; benches use
// bounded sample counts so memory stays small).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace kafkadirect {

/// Collects int64 samples (typically nanoseconds) and reports order
/// statistics. Not thread-safe; the simulator is single-threaded.
///
/// Two modes:
///  - exact (default): every sample is kept; percentiles are exact.
///  - bounded reservoir: EnableReservoir(cap, seed) caps memory at `cap`
///    samples, replaced uniformly at random (Algorithm R) so long-running
///    benches cannot grow without bound. count/Min/Max/Mean stay exact in
///    both modes (tracked as running values); percentiles are estimated
///    from the reservoir.
class Histogram {
 public:
  void Add(int64_t v) {
    if (total_ == 0 || v < min_) min_ = v;
    if (total_ == 0 || v > max_) max_ = v;
    sum_ += static_cast<long double>(v);
    total_++;
    if (cap_ == 0 || samples_.size() < cap_) {
      samples_.push_back(v);
      sorted_ = false;
      return;
    }
    // Algorithm R: the new sample displaces a uniformly chosen reservoir
    // slot with probability cap/total. (samples_ may have been sorted in
    // place, but a uniform index into a permutation is still a uniform
    // element.)
    uint64_t j = rng_.Uniform(total_);
    if (j < cap_) {
      samples_[static_cast<size_t>(j)] = v;
      sorted_ = false;
    }
  }

  /// Switches to bounded-reservoir mode. Call before adding samples;
  /// `cap` must be > 0 and the seed makes runs reproducible.
  void EnableReservoir(size_t cap, uint64_t seed) {
    cap_ = cap;
    rng_ = Random(seed);
    if (samples_.size() > cap_) {
      samples_.resize(cap_);
      sorted_ = false;
    }
  }

  size_t reservoir_cap() const { return cap_; }

  /// Total number of Add() calls (exact in both modes).
  size_t count() const { return static_cast<size_t>(total_); }
  bool empty() const { return total_ == 0; }

  int64_t Min() const { return total_ == 0 ? 0 : min_; }
  int64_t Max() const { return total_ == 0 ? 0 : max_; }
  double Mean() const {
    return total_ == 0
               ? 0.0
               : static_cast<double>(sum_ / static_cast<long double>(total_));
  }
  /// p in [0, 100]; nearest-rank percentile over the stored samples
  /// (exact mode: all of them). Returns 0 on empty.
  int64_t Percentile(double p) const;
  int64_t Median() const { return Percentile(50.0); }

  void Clear() {
    samples_.clear();
    sorted_ = false;
    total_ = 0;
    min_ = 0;
    max_ = 0;
    sum_ = 0;
  }

  /// One-line summary "count=.. min=.. p50=.. p99=.. max=.." in microseconds
  /// (input assumed nanoseconds).
  std::string SummaryUs() const;

  /// Stored samples (unsorted order unspecified); used to merge histograms.
  const std::vector<int64_t>& samples() const { return samples_; }
  /// Combines running stats and appends the other's stored samples. The
  /// reservoir cap is not re-applied to merged samples; benches merge
  /// exact histograms.
  void Merge(const Histogram& other) {
    if (other.total_ == 0) return;
    if (total_ == 0 || other.min_ < min_) min_ = other.min_;
    if (total_ == 0 || other.max_ > max_) max_ = other.max_;
    sum_ += other.sum_;
    total_ += other.total_;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

 private:
  void Sort() const;

  mutable std::vector<int64_t> samples_;
  mutable bool sorted_ = false;
  size_t cap_ = 0;  // 0 = exact mode
  Random rng_{0};
  uint64_t total_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  long double sum_ = 0;
};

}  // namespace kafkadirect

// Slice: a non-owning view over a byte range, RocksDB-style.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace kafkadirect {

/// Non-owning pointer+length view of raw bytes. The viewed memory must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(const std::vector<uint8_t>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Advances the view past the first `n` bytes. `n` must be <= size().
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  /// A sub-view [offset, offset+len). Caller guarantees bounds.
  Slice SubSlice(size_t offset, size_t len) const {
    return Slice(data_ + offset, len);
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }
  bool operator!=(const Slice& other) const { return !(*this == other); }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace kafkadirect

// Internals shared between the CRC32C dispatcher (crc32c.cc) and the
// per-ISA hardware backends, each of which is compiled in its own source
// file with the matching -m flags (see src/common/CMakeLists.txt).
#pragma once

#include <cstddef>
#include <cstdint>

namespace kafkadirect {
namespace crc32c {
namespace internal {

// The hardware backends checksum three independent streams of block-sized
// chunks to fill the crc32 instruction's 3-cycle latency, then merge the
// per-stream CRCs with precomputed "append N zero bytes" operators.
constexpr size_t kLongBlock = 8192;
constexpr size_t kShortBlock = 256;

/// Operator tables for appending kLongBlock / kShortBlock zero bytes to a
/// raw (non-inverted) CRC register: one lookup per register byte.
struct ShiftTables {
  uint32_t long_shift[4][256];
  uint32_t short_shift[4][256];
};
const ShiftTables& GetShiftTables();

inline uint32_t Shift(const uint32_t table[4][256], uint32_t crc) {
  return table[0][crc & 0xFF] ^ table[1][(crc >> 8) & 0xFF] ^
         table[2][(crc >> 16) & 0xFF] ^ table[3][crc >> 24];
}

#if defined(KD_CRC32C_SSE42)
uint32_t ExtendSse42(uint32_t crc, const uint8_t* data, size_t n);
#endif
#if defined(KD_CRC32C_ARM64)
uint32_t ExtendArm64(uint32_t crc, const uint8_t* data, size_t n);
#endif

}  // namespace internal
}  // namespace crc32c
}  // namespace kafkadirect

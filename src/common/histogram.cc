#include "common/histogram.h"

#include <cmath>
#include <cstdio>

namespace kafkadirect {

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

int64_t Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  Sort();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

std::string Histogram::SummaryUs() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%zu min=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                count(), Min() / 1e3, Median() / 1e3, Percentile(99) / 1e3,
                Max() / 1e3);
  return buf;
}

}  // namespace kafkadirect

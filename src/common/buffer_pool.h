// Free-list of byte vectors for the message hot paths.
//
// Brokers and clients exchange framed byte vectors; without pooling, every
// produce request allocates a fresh frame on encode and frees it after
// decode. A BufferPool recycles those vectors: Acquire() hands back a
// previously released vector (capacity intact, size 0), so at steady state
// the produce/response loop runs without touching the allocator.
//
// Ownership rules: a buffer obtained from Acquire() is owned by the caller
// like any std::vector — it may be moved into messages, resized, or simply
// destroyed. Release() is an optimisation, never an obligation; dropping a
// buffer on the floor is always correct. Never Release() a buffer that is
// still referenced (e.g. a frame whose Slice is still being parsed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kafkadirect {

class BufferPool {
 public:
  /// `max_retained` bounds the free list; further releases are dropped.
  explicit BufferPool(size_t max_retained = 64)
      : max_retained_(max_retained) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  struct Stats {
    uint64_t hits = 0;      // Acquire() served from the free list
    uint64_t misses = 0;    // Acquire() had to hand out a fresh vector
    uint64_t recycled = 0;  // Release() kept the buffer
    uint64_t dropped = 0;   // Release() discarded it (full / oversized)
  };

  /// Returns an empty vector, reusing released capacity when available.
  std::vector<uint8_t> Acquire() {
    if (free_.empty()) {
      stats_.misses++;
      return {};
    }
    stats_.hits++;
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  /// Acquire() resized to `n` bytes. Counts as a hit only if the recycled
  /// capacity already covered `n`.
  std::vector<uint8_t> Acquire(size_t n) {
    if (free_.empty()) {
      stats_.misses++;
      return std::vector<uint8_t>(n);
    }
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    if (buf.capacity() >= n) {
      stats_.hits++;
    } else {
      stats_.misses++;
    }
    buf.resize(n);
    return buf;
  }

  /// Returns a buffer to the pool. The contents are discarded.
  void Release(std::vector<uint8_t>&& buf) {
    // Keep pathological one-off giants out of the free list; normal batch
    // frames are well under this.
    constexpr size_t kMaxRetainedCapacity = 4u << 20;
    if (free_.size() >= max_retained_ || buf.capacity() == 0 ||
        buf.capacity() > kMaxRetainedCapacity) {
      stats_.dropped++;
      return;
    }
    stats_.recycled++;
    buf.clear();
    free_.push_back(std::move(buf));
  }

  const Stats& stats() const { return stats_; }
  size_t retained() const { return free_.size(); }

 private:
  const size_t max_retained_;
  std::vector<std::vector<uint8_t>> free_;  // LIFO: reuse the warmest
  Stats stats_;
};

}  // namespace kafkadirect

// Software CRC32C (Castagnoli), the checksum Kafka's record batches use.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace kafkadirect {
namespace crc32c {

/// Extends `crc` with `data`. Pass 0 as the initial crc.
uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n);

/// CRC32C of a byte range (initial crc 0).
inline uint32_t Value(const uint8_t* data, size_t n) {
  return Extend(0, data, n);
}
inline uint32_t Value(Slice s) { return Extend(0, s.data(), s.size()); }

}  // namespace crc32c
}  // namespace kafkadirect

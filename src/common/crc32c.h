// CRC32C (Castagnoli), the checksum Kafka's record batches use.
//
// Extend() dispatches once, at first use, to the fastest backend the CPU
// offers: the SSE4.2 `crc32` instruction on x86-64 or the ARMv8 CRC32
// extension, both running three independent streams to hide the
// instruction's latency. The slice-by-8 software implementation remains as
// the portable fallback and the reference the hardware backends are
// cross-checked against in tests.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace kafkadirect {
namespace crc32c {

/// Extends `crc` with `data`. Pass 0 as the initial crc.
uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n);

/// The portable slice-by-8 implementation, always available. Exposed so
/// tests can cross-check the hardware backends against it.
uint32_t ExtendPortable(uint32_t crc, const uint8_t* data, size_t n);

/// Name of the backend Extend() dispatches to: "sse4.2", "armv8-crc" or
/// "portable".
const char* BackendName();

/// True if Extend() uses CPU CRC32C instructions.
bool IsHardwareAccelerated();

/// CRC32C of a byte range (initial crc 0).
inline uint32_t Value(const uint8_t* data, size_t n) {
  return Extend(0, data, n);
}
inline uint32_t Value(Slice s) { return Extend(0, s.data(), s.size()); }

}  // namespace crc32c
}  // namespace kafkadirect

#include "common/crc32c.h"

#include "common/crc32c_internal.h"

#if defined(KD_CRC32C_ARM64) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace kafkadirect {
namespace crc32c {
namespace {

// Slice-by-8 tables for polynomial 0x1EDC6F41 (reflected 0x82F63B78),
// generated at startup.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      for (int k = 1; k < 8; k++) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t ExtendPortable(uint32_t crc, const uint8_t* data, size_t n) {
  const Tables& tb = GetTables();
  crc = ~crc;
  // Process 8 bytes at a time.
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(data[0]) |
                         (static_cast<uint32_t>(data[1]) << 8) |
                         (static_cast<uint32_t>(data[2]) << 16) |
                         (static_cast<uint32_t>(data[3]) << 24));
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][(lo >> 24) & 0xFF] ^
          tb.t[3][data[4]] ^ tb.t[2][data[5]] ^ tb.t[1][data[6]] ^
          tb.t[0][data[7]];
    data += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *data++) & 0xFF];
  }
  return ~crc;
}

namespace internal {
namespace {

// "Append zero bytes" operators as 32x32 matrices over GF(2), built by
// squaring (doubling the zero-run length) until the block length is
// reached. Each matrix row n is the operator applied to the unit register
// 1 << n.
uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1) sum ^= *mat;
    vec >>= 1;
    mat++;
  }
  return sum;
}

void Gf2MatrixSquare(uint32_t square[32], const uint32_t mat[32]) {
  for (int n = 0; n < 32; n++) square[n] = Gf2MatrixTimes(mat, mat[n]);
}

// Computes the operator for `len` zero bytes (len must be a power of two
// here, which keeps the squaring chain exact).
void ZeroOperator(uint32_t op[32], size_t len) {
  uint32_t odd[32];
  odd[0] = 0x82F63B78u;  // reflected CRC32C polynomial: one zero bit
  for (int n = 1; n < 32; n++) odd[n] = 1u << (n - 1);
  uint32_t even[32];
  Gf2MatrixSquare(even, odd);  // two zero bits
  Gf2MatrixSquare(odd, even);  // four zero bits
  // Square from one zero byte upward until len is consumed.
  do {
    Gf2MatrixSquare(even, odd);
    len >>= 1;
    if (len == 0) {
      for (int n = 0; n < 32; n++) op[n] = even[n];
      return;
    }
    Gf2MatrixSquare(odd, even);
    len >>= 1;
  } while (len != 0);
  for (int n = 0; n < 32; n++) op[n] = odd[n];
}

void FillShiftTable(uint32_t table[4][256], size_t len) {
  uint32_t op[32];
  ZeroOperator(op, len);
  for (uint32_t n = 0; n < 256; n++) {
    table[0][n] = Gf2MatrixTimes(op, n);
    table[1][n] = Gf2MatrixTimes(op, n << 8);
    table[2][n] = Gf2MatrixTimes(op, n << 16);
    table[3][n] = Gf2MatrixTimes(op, n << 24);
  }
}

}  // namespace

const ShiftTables& GetShiftTables() {
  static const ShiftTables tables = [] {
    ShiftTables t;
    FillShiftTable(t.long_shift, kLongBlock);
    FillShiftTable(t.short_shift, kShortBlock);
    return t;
  }();
  return tables;
}

}  // namespace internal

namespace {

using ExtendFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

struct Backend {
  ExtendFn fn;
  const char* name;
};

Backend PickBackend() {
#if defined(KD_CRC32C_SSE42)
  if (__builtin_cpu_supports("sse4.2")) {
    return Backend{&internal::ExtendSse42, "sse4.2"};
  }
#endif
#if defined(KD_CRC32C_ARM64) && defined(__linux__)
  if ((getauxval(AT_HWCAP) & HWCAP_CRC32) != 0) {
    return Backend{&internal::ExtendArm64, "armv8-crc"};
  }
#endif
  return Backend{&ExtendPortable, "portable"};
}

const Backend& GetBackend() {
  static const Backend backend = PickBackend();
  return backend;
}

}  // namespace

uint32_t Extend(uint32_t crc, const uint8_t* data, size_t n) {
  return GetBackend().fn(crc, data, n);
}

const char* BackendName() { return GetBackend().name; }

bool IsHardwareAccelerated() { return GetBackend().fn != &ExtendPortable; }

}  // namespace crc32c
}  // namespace kafkadirect

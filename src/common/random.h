// Deterministic PRNG (xorshift128+) so simulations are bit-reproducible.
#pragma once

#include <cstdint>

namespace kafkadirect {

/// Fast deterministic random generator. Never seeded from wall-clock; all
/// users pass explicit seeds so runs are reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to spread the seed over both state words.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace kafkadirect

#include "common/units.h"

#include <cstdio>

namespace kafkadirect {

std::string FormatSize(uint64_t bytes) {
  char buf[32];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lluG",
                  static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else if (bytes >= kKiB && bytes % kKiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes / kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatRate(double bytes, double nanos) {
  char buf[48];
  double gib = RateGiBps(bytes, nanos);
  if (gib >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB/s", gib);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f MiB/s", RateMiBps(bytes, nanos));
  }
  return buf;
}

}  // namespace kafkadirect

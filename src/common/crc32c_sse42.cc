// SSE4.2 CRC32C backend (x86-64 `crc32` instruction). Compiled with
// -msse4.2; only ever called after runtime CPU-feature detection.
#include "common/crc32c_internal.h"

#if defined(KD_CRC32C_SSE42)

#include <nmmintrin.h>

#include <cstring>

namespace kafkadirect {
namespace crc32c {
namespace internal {
namespace {

inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

uint32_t ExtendSse42(uint32_t crc, const uint8_t* data, size_t n) {
  uint64_t c = ~crc;
  // Align to 8 bytes so the wide loads below never straddle needlessly.
  while (n > 0 && (reinterpret_cast<uintptr_t>(data) & 7) != 0) {
    c = _mm_crc32_u8(static_cast<uint32_t>(c), *data++);
    n--;
  }
  const ShiftTables& st = GetShiftTables();
  // The crc32 instruction has a 3-cycle latency but 1-cycle throughput:
  // run three independent streams and merge them with the precomputed
  // zero-shift operators.
  while (n >= 3 * kLongBlock) {
    uint64_t c1 = 0, c2 = 0;
    const uint8_t* q = data + kLongBlock;
    const uint8_t* r = data + 2 * kLongBlock;
    for (size_t i = 0; i < kLongBlock; i += 8) {
      c = _mm_crc32_u64(c, LoadU64(data + i));
      c1 = _mm_crc32_u64(c1, LoadU64(q + i));
      c2 = _mm_crc32_u64(c2, LoadU64(r + i));
    }
    c = Shift(st.long_shift, static_cast<uint32_t>(c)) ^ c1;
    c = Shift(st.long_shift, static_cast<uint32_t>(c)) ^ c2;
    data += 3 * kLongBlock;
    n -= 3 * kLongBlock;
  }
  while (n >= 3 * kShortBlock) {
    uint64_t c1 = 0, c2 = 0;
    const uint8_t* q = data + kShortBlock;
    const uint8_t* r = data + 2 * kShortBlock;
    for (size_t i = 0; i < kShortBlock; i += 8) {
      c = _mm_crc32_u64(c, LoadU64(data + i));
      c1 = _mm_crc32_u64(c1, LoadU64(q + i));
      c2 = _mm_crc32_u64(c2, LoadU64(r + i));
    }
    c = Shift(st.short_shift, static_cast<uint32_t>(c)) ^ c1;
    c = Shift(st.short_shift, static_cast<uint32_t>(c)) ^ c2;
    data += 3 * kShortBlock;
    n -= 3 * kShortBlock;
  }
  while (n >= 8) {
    c = _mm_crc32_u64(c, LoadU64(data));
    data += 8;
    n -= 8;
  }
  while (n > 0) {
    c = _mm_crc32_u8(static_cast<uint32_t>(c), *data++);
    n--;
  }
  return ~static_cast<uint32_t>(c);
}

}  // namespace internal
}  // namespace crc32c
}  // namespace kafkadirect

#endif  // KD_CRC32C_SSE42

// ARMv8 CRC32 extension backend. Compiled with -march=armv8-a+crc; only
// ever called after runtime HWCAP detection.
#include "common/crc32c_internal.h"

#if defined(KD_CRC32C_ARM64)

#include <arm_acle.h>

#include <cstring>

namespace kafkadirect {
namespace crc32c {
namespace internal {
namespace {

inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

uint32_t ExtendArm64(uint32_t crc, const uint8_t* data, size_t n) {
  uint32_t c = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(data) & 7) != 0) {
    c = __crc32cb(c, *data++);
    n--;
  }
  const ShiftTables& st = GetShiftTables();
  // Same 3-way stream interleaving as the SSE4.2 backend: the crc32c
  // instructions pipeline, so independent streams hide their latency.
  while (n >= 3 * kLongBlock) {
    uint32_t c1 = 0, c2 = 0;
    const uint8_t* q = data + kLongBlock;
    const uint8_t* r = data + 2 * kLongBlock;
    for (size_t i = 0; i < kLongBlock; i += 8) {
      c = __crc32cd(c, LoadU64(data + i));
      c1 = __crc32cd(c1, LoadU64(q + i));
      c2 = __crc32cd(c2, LoadU64(r + i));
    }
    c = Shift(st.long_shift, c) ^ c1;
    c = Shift(st.long_shift, c) ^ c2;
    data += 3 * kLongBlock;
    n -= 3 * kLongBlock;
  }
  while (n >= 3 * kShortBlock) {
    uint32_t c1 = 0, c2 = 0;
    const uint8_t* q = data + kShortBlock;
    const uint8_t* r = data + 2 * kShortBlock;
    for (size_t i = 0; i < kShortBlock; i += 8) {
      c = __crc32cd(c, LoadU64(data + i));
      c1 = __crc32cd(c1, LoadU64(q + i));
      c2 = __crc32cd(c2, LoadU64(r + i));
    }
    c = Shift(st.short_shift, c) ^ c1;
    c = Shift(st.short_shift, c) ^ c2;
    data += 3 * kShortBlock;
    n -= 3 * kShortBlock;
  }
  while (n >= 8) {
    c = __crc32cd(c, LoadU64(data));
    data += 8;
    n -= 8;
  }
  while (n > 0) {
    c = __crc32cb(c, *data++);
    n--;
  }
  return ~c;
}

}  // namespace internal
}  // namespace crc32c
}  // namespace kafkadirect

#endif  // KD_CRC32C_ARM64

// Status / StatusOr: exception-free error handling in the style of
// RocksDB/Arrow. All fallible public APIs in this codebase return Status or
// StatusOr<T>.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace kafkadirect {

/// Error categories used across the library. Kept small on purpose; the
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,        // e.g. RDMA access outside a registered region
  kPermissionDenied,  // e.g. write to a read-only memory region
  kResourceExhausted, // e.g. CQ overflow, file full
  kFailedPrecondition,
  kAborted,           // e.g. shared-produce hole timeout
  kTimedOut,
  kCorruption,        // e.g. CRC mismatch
  kDisconnected,      // e.g. QP in error state, TCP peer gone
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name ("Ok", "Corruption", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Disconnected(std::string msg) {
    return Status(StatusCode::kDisconnected, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsDisconnected() const { return code_ == StatusCode::kDisconnected; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error. `status()` is OK iff a value is held.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr must not be constructed from an OK status");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagate a non-OK Status to the caller.
#define KD_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::kafkadirect::Status _kd_st = (expr);   \
    if (!_kd_st.ok()) return _kd_st;         \
  } while (0)

// Coroutine variant: co_returns the error to the caller.
#define KD_CO_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::kafkadirect::Status _kd_st = (expr);   \
    if (!_kd_st.ok()) co_return _kd_st;      \
  } while (0)

#define KD_CONCAT_IMPL(a, b) a##b
#define KD_CONCAT(a, b) KD_CONCAT_IMPL(a, b)

// Evaluate a StatusOr expression; on error, return its Status; otherwise
// bind the value to `lhs`.
#define KD_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto KD_CONCAT(_kd_sor_, __LINE__) = (expr);                  \
  if (!KD_CONCAT(_kd_sor_, __LINE__).ok())                      \
    return KD_CONCAT(_kd_sor_, __LINE__).status();              \
  lhs = std::move(KD_CONCAT(_kd_sor_, __LINE__)).value()

// Coroutine variant of KD_ASSIGN_OR_RETURN.
#define KD_CO_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto KD_CONCAT(_kd_sor_, __LINE__) = (expr);                  \
  if (!KD_CONCAT(_kd_sor_, __LINE__).ok())                      \
    co_return KD_CONCAT(_kd_sor_, __LINE__).status();           \
  lhs = std::move(KD_CONCAT(_kd_sor_, __LINE__)).value()

}  // namespace kafkadirect

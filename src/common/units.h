// Size/time unit constants and pretty-printing helpers used by benches.
#pragma once

#include <cstdint>
#include <string>

namespace kafkadirect {

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * kKiB;
constexpr uint64_t kGiB = 1024 * kMiB;

// Virtual time is kept in nanoseconds throughout the codebase.
constexpr int64_t kNanosPerMicro = 1000;
constexpr int64_t kNanosPerMilli = 1000 * kNanosPerMicro;
constexpr int64_t kNanosPerSecond = 1000 * kNanosPerMilli;

constexpr int64_t Micros(int64_t us) { return us * kNanosPerMicro; }
constexpr int64_t Millis(int64_t ms) { return ms * kNanosPerMilli; }
constexpr int64_t Seconds(int64_t s) { return s * kNanosPerSecond; }

/// "64B", "2K", "32K", "1M" — same labels as the paper's x-axes.
std::string FormatSize(uint64_t bytes);

/// Bytes over nanoseconds, rendered as "X.XX GiB/s" / "X.X MiB/s".
std::string FormatRate(double bytes, double nanos);

/// Rate in MiB per second (numeric, for tables).
inline double RateMiBps(double bytes, double nanos) {
  return bytes / nanos * 1e9 / static_cast<double>(kMiB);
}
inline double RateGiBps(double bytes, double nanos) {
  return bytes / nanos * 1e9 / static_cast<double>(kGiB);
}

}  // namespace kafkadirect

// Minimal leveled logging and CHECK macros.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace kafkadirect {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn so
/// tests and benches stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Virtual-clock hook: when set, KD_LOG lines carry the simulator's current
/// virtual timestamp (ns) so logs line up with traces. The simulator
/// registers itself on construction and unregisters on destruction; with
/// nested simulators the most recently constructed one wins, and tearing
/// one down only clears the hook it installed (ctx-matched).
using LogClockFn = int64_t (*)(const void* ctx);
void SetLogClock(LogClockFn fn, const void* ctx);
void ClearLogClock(const void* ctx);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define KD_LOG(level)                                              \
  if (::kafkadirect::LogLevel::level < ::kafkadirect::GetLogLevel()) \
    ;                                                              \
  else                                                             \
    ::kafkadirect::internal::LogMessage(::kafkadirect::LogLevel::level, \
                                        __FILE__, __LINE__)        \
        .stream()

// Always-on invariant check; aborts with a message on failure.
#define KD_CHECK(cond)                                                   \
  if (cond)                                                              \
    ;                                                                    \
  else                                                                   \
    ::kafkadirect::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define KD_CHECK_OK(expr)                                        \
  do {                                                           \
    ::kafkadirect::Status _kd_ck = (expr);                       \
    KD_CHECK(_kd_ck.ok()) << _kd_ck.ToString();                  \
  } while (0)

#define KD_DCHECK(cond) KD_CHECK(cond)

}  // namespace kafkadirect

#include "common/logging.h"

namespace kafkadirect {
namespace {
LogLevel g_level = LogLevel::kWarn;
LogClockFn g_log_clock = nullptr;
const void* g_log_clock_ctx = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void SetLogClock(LogClockFn fn, const void* ctx) {
  g_log_clock = fn;
  g_log_clock_ctx = ctx;
}

void ClearLogClock(const void* ctx) {
  if (g_log_clock_ctx == ctx) {
    g_log_clock = nullptr;
    g_log_clock_ctx = nullptr;
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level);
  if (g_log_clock != nullptr) {
    stream_ << " " << g_log_clock(g_log_clock_ctx) << "ns";
  }
  stream_ << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace kafkadirect

// Move-only callable with small-buffer optimisation, used by the simulator
// so that scheduling an event does not allocate.
//
// std::function heap-allocates for captures beyond ~16 bytes on libstdc++,
// and every simulated packet hop or timer schedules at least one such
// callback. InlineFunction stores callables up to kInlineCapacity bytes
// (48: enough for a peer shared_ptr plus a moved-in payload vector, or a
// coroutine handle with a couple of captured pointers) directly in the
// event entry; larger or throwing-move callables fall back to the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace kafkadirect {

class InlineFunction {
 public:
  static constexpr size_t kInlineCapacity = 48;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(storage_)) =
          new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True if the callable lives in the inline buffer (for tests).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs *src into dst and destroys *src (inline case), or
    // just copies the owning pointer over (heap case).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool inline_stored;
  };

  template <typename Fn>
  static Fn* Stored(void* storage) {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*Stored<Fn>(s))(); },
      [](void* dst, void* src) {
        Fn* from = Stored<Fn>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { Stored<Fn>(s)->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**Stored<Fn*>(s))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *Stored<Fn*>(src);
      },
      [](void* s) { delete *Stored<Fn*>(s); },
      false,
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace kafkadirect

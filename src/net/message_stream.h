// MessageStream: transport abstraction carrying framed Kafka protocol
// messages. Implemented by the simulated kernel TCP stack (kd_tcpnet) and
// by the OSU-Kafka two-sided RDMA transport (kd_osu), so the unmodified
// broker/client request path runs over either — exactly the comparison the
// paper draws between Kafka and OSU Kafka.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "net/fabric.h"
#include "sim/task.h"

namespace kafkadirect {
namespace net {

class MessageStream {
 public:
  virtual ~MessageStream() = default;

  /// Sends one framed message. `zero_copy` models Kafka's sendfile()
  /// optimization for mapped-file transfers (skips the sender-side copy;
  /// the paper notes receivers still pay their copies).
  virtual sim::Co<Status> Send(std::vector<uint8_t> msg,
                               bool zero_copy = false) = 0;

  /// Receives the next message; blocks until one arrives or the peer
  /// closes (Status::Disconnected).
  virtual sim::Co<StatusOr<std::vector<uint8_t>>> Recv() = 0;

  virtual void Close() = 0;
  virtual bool closed() const = 0;

  /// Fabric node of the remote endpoint.
  virtual NodeId peer_node() const = 0;
};

using MessageStreamPtr = std::shared_ptr<MessageStream>;

class StreamListener {
 public:
  virtual ~StreamListener() = default;

  /// Blocks until an inbound connection is established; Disconnected when
  /// the listener shuts down.
  virtual sim::Co<StatusOr<MessageStreamPtr>> Accept() = 0;

  virtual void Shutdown() = 0;
};

}  // namespace net
}  // namespace kafkadirect

// CostModel: every timing constant in the simulation, in one place.
//
// Defaults are calibrated to the paper's testbed (56 Gbit/s Mellanox
// ConnectX-4, 2x 8-core Xeon E5-2630 v3, IPoIB for the TCP baseline) using
// the paper's own microbenchmarks and latency decomposition:
//   - link goodput ~6 GiB/s, MTU 2 KiB                       (S5, Fig 8)
//   - WriteWithImm RTT ~1.5 us, RDMA Read ~2.2 us            (Fig 7, S4.4)
//   - one RDMA atomic unit: 2.68 M ops/s per counter         (S4.2.2)
//   - inter-thread request handoff 11 us, record processing
//     ~14 us incl. CRC32C, blocking-poll wakeups             (S5.1)
// Benches construct one CostModel and thread it through the whole stack;
// nothing else in the codebase hard-codes a time constant.
#pragma once

#include <cstdint>

#include "sim/simulator.h"

namespace kafkadirect {

/// Physical link / switch model (shared by RDMA and TCP traffic).
struct LinkModel {
  /// Payload bandwidth of one port direction. 56 Gbit/s signaling with
  /// 64b/66b encoding and protocol overheads yields ~6 GiB/s of goodput.
  double bytes_per_ns = 6.44;  // ~6 GiB/s

  /// One-way propagation incl. switch latency.
  sim::TimeNs propagation_ns = 250;

  /// InfiniBand path MTU.
  uint32_t mtu_bytes = 2048;

  /// Per-packet header+ICRC overhead (LRH/BTH/...).
  uint32_t header_bytes = 30;

  /// Loopback transfer latency (broker issuing an atomic to itself).
  sim::TimeNs loopback_ns = 300;
};

/// RNIC / verbs execution model.
struct RdmaModel {
  /// Posting a WR: WQE write + doorbell + WQE fetch by the NIC.
  sim::TimeNs doorbell_ns = 80;

  /// Per-WR processing inside an RNIC (each side). Together with the
  /// doorbell this caps the small-message rate at ~6.6 M writes/s,
  /// matching Fig. 8's no-batching goodput (~0.5 GiB/s of 64 B writes).
  sim::TimeNs process_ns = 70;

  /// Writing a CQE + the poller picking it up (busy polling).
  sim::TimeNs completion_ns = 150;

  /// Extra cost charged only when a CQE is actually generated (signaled or
  /// errored WR). Historically folded into `completion_ns`; split out so the
  /// datapath-protocol ablation (DESIGN.md §12) can model the saving from
  /// selective signaling. 0 by default: with every WR signaled the paper
  /// figures are reproduced bit-identically.
  sim::TimeNs cqe_ns = 0;

  /// Extra responder-side cost per receive-completion notification (the
  /// consumed recv + CQE handling that a two-sided notification costs the
  /// target). 0 by default for the same bit-identity reason; the datapath
  /// ablation sets it nonzero to surface the ring-consume win in virtual
  /// time as well as in counters.
  sim::TimeNs notification_ns = 0;

  /// Responder-side serialization of one atomic op on one counter:
  /// 373 ns => 2.68 M ops/s, the paper's measured ceiling.
  sim::TimeNs atomic_unit_ns = 373;

  /// Responder turnaround for a Read (fetch from memory, form response).
  sim::TimeNs read_response_ns = 700;

  /// Posting cost of a chained work request in a postlist (ibv_post_send
  /// with a `next`-linked WR list): the WQE write without a doorbell ring.
  /// Only the chain head pays `doorbell_ns`; every later WR in the chain
  /// pays this instead — the standard lever for amortizing MMIO cost when
  /// fanning out many small messages.
  sim::TimeNs postlist_wqe_ns = 20;

  /// Default queue sizes. CQ overflow puts the QP in error state, which is
  /// what motivates the paper's credit-based replication flow control.
  int max_send_wr = 128;
  int max_recv_wr = 1024;
  int default_cq_capacity = 4096;

  /// Default capacity of a SharedReceiveQueue (ibv_srq_init_attr.max_wr):
  /// one pool of posted receives serving every attached QP, sized for the
  /// server as a whole instead of per connection.
  int max_srq_wr = 4096;
};

/// Kernel TCP/IP (over IPoIB) cost model.
struct TcpModel {
  /// Sender syscall + kernel transmit path per message.
  sim::TimeNs send_overhead_ns = 15000;

  /// Copy user buffer -> socket buffer (sender side).
  double send_copy_ns_per_byte = 0.8;

  /// Receiver interrupt + kernel receive path per message.
  sim::TimeNs recv_overhead_ns = 15000;

  /// The two receive-side copies the paper calls out: driver buffer ->
  /// socket buffer -> application buffer.
  double recv_copy_ns_per_byte = 1.6;

  /// IPoIB pays extra per-byte overhead vs native verbs; effective goodput
  /// of a single TCP stream is well below link rate.
  double bytes_per_ns = 1.8;  // IPoIB single-stream goodput
};

/// Thread-scheduling costs (the dominant term in Kafka's ~100 us+ RPC
/// latencies per the paper's decomposition).
struct CpuModel {
  /// Waking a thread blocked on a selector / condition variable.
  sim::TimeNs wakeup_ns = 25000;

  /// Handing a request between thread pools via the shared queue (paper:
  /// "forwarding a request takes 11 us").
  sim::TimeNs handoff_ns = 11000;

  /// One busy-poll iteration (RDMA clients spin on their CQs).
  sim::TimeNs poll_iteration_ns = 200;
};

/// Kafka application-level costs (broker and client bookkeeping around the
/// actual data movement).
struct KafkaModel {
  /// CRC32C at ~2.8 GB/s (software, single core).
  double crc_ns_per_byte = 0.35;

  /// memcpy within broker (file buffer writes, response staging).
  double copy_ns_per_byte = 0.30;

  /// API-worker fixed cost to process one produce request: decode, verify,
  /// assign offsets, update index, commit bookkeeping.
  sim::TimeNs produce_process_ns = 9000;

  /// Same work for an RDMA-produced batch already sitting in the file —
  /// no request decode, no response build (calibrated so one worker
  /// sustains ~630 MiB/s of 4 KiB records, Fig. 13).
  sim::TimeNs rdma_produce_process_ns = 4500;

  /// The TCP produce path's receive-buffer -> file-buffer copy; slower
  /// than a straight memcpy (JVM heap traffic, cache misses).
  double produce_copy_ns_per_byte = 2.0;

  /// API-worker fixed cost for one fetch request.
  sim::TimeNs fetch_process_ns = 8000;

  /// Network-thread cost to frame/unframe one request or response.
  sim::TimeNs net_frame_ns = 4000;

  /// Producer client: API entry, batch bookkeeping, future allocation.
  sim::TimeNs producer_api_ns = 9000;

  /// Producer client copies user records "to prevent mutation" (paper S5.1).
  double producer_copy_ns_per_byte = 0.30;

  /// Consumer client fixed cost per poll() returning data.
  sim::TimeNs consumer_api_ns = 4000;

  /// KafkaDirect consumer must copy fetched bytes from the off-heap RDMA
  /// buffer into a Java-heap buffer (paper S5.3: ~2 us of the 4.2 us).
  double consumer_copy_ns_per_byte = 0.45;

  /// KafkaDirect client fixed per-operation cost (busy-polling RDMA
  /// clients skip the blocking-wakeup path).
  sim::TimeNs rdma_consumer_api_ns = 1200;
  sim::TimeNs rdma_producer_api_ns = 3000;

  /// Shared-mode producer: synchronous wait for the FAA region claim (the
  /// client cannot build the write until the claim returns). Reproduces the
  /// exclusive-vs-shared gap of Figs. 6/11.
  sim::TimeNs faa_sync_ns = 6000;

  /// Replica follower: fixed cost to append a replicated batch.
  sim::TimeNs replica_append_ns = 6000;

  /// Leader-side CPU to issue one push-replication RDMA Write (WQE prep,
  /// completion/credit bookkeeping). Batching contiguous writes amortizes
  /// this — the Fig. 17 mechanism.
  sim::TimeNs replication_post_ns = 7000;
};

/// The complete model; every component takes a const reference to this.
struct CostModel {
  LinkModel link;
  RdmaModel rdma;
  TcpModel tcp;
  CpuModel cpu;
  KafkaModel kafka;

  /// Service time for CRC-checking `n` bytes.
  sim::TimeNs CrcCost(uint64_t n) const {
    return static_cast<sim::TimeNs>(kafka.crc_ns_per_byte * n);
  }
  /// Service time for copying `n` bytes inside the broker/client.
  sim::TimeNs CopyCost(uint64_t n) const {
    return static_cast<sim::TimeNs>(kafka.copy_ns_per_byte * n);
  }

  /// Conservative lookahead window for the sharded simulator
  /// (sim/sharded.h): nothing crosses between nodes — and therefore
  /// between shard domains — in less than one propagation delay, so
  /// shards may run this far ahead of each other without synchronizing.
  sim::TimeNs ShardLookaheadNs() const { return link.propagation_ns; }
};

}  // namespace kafkadirect

// Fabric: the physical network — nodes attached to a non-blocking switch,
// with per-node egress/ingress serialization at link rate, MTU packetization
// overhead, and propagation delay.
//
// ReserveTransfer is a *capacity reservation*: it immediately books wire
// time on the source's egress and the destination's ingress and returns the
// absolute arrival time. Callers (RNIC engines, TCP stacks) schedule their
// delivery work at that time. Because reservations on a node are monotone,
// deliveries between a given pair of nodes stay in order — which is what
// reliable transports require.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "net/cost_model.h"
#include "obs/observability.h"
#include "sim/simulator.h"

namespace kafkadirect {
namespace net {

using NodeId = uint32_t;

class Fabric {
 public:
  Fabric(sim::Simulator& sim, const CostModel& cost)
      : sim_(sim), cost_(cost), obs_(sim) {}

  /// Registers a machine on the fabric.
  NodeId AddNode(std::string name) {
    nodes_.push_back(Node{std::move(name), 0, 0, 0, 0});
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  /// Pins a node to a simulator shard domain (sim/sharded.h). Purely
  /// metadata at the fabric level: entities consult it when choosing the
  /// event queue to schedule a node's work on. Default is shard 0.
  void BindNodeShard(NodeId id, uint32_t shard) {
    KD_DCHECK(id < nodes_.size());
    nodes_[id].shard = shard;
  }
  uint32_t NodeShard(NodeId id) const {
    KD_DCHECK(id < nodes_.size());
    return nodes_[id].shard;
  }

  size_t num_nodes() const { return nodes_.size(); }
  const std::string& node_name(NodeId id) const { return nodes_[id].name; }

  /// Wire footprint of a payload: data + per-MTU-packet headers.
  uint64_t WireBytes(uint64_t payload) const {
    const LinkModel& l = cost_.link;
    uint64_t packets = (payload + l.mtu_bytes - 1) / l.mtu_bytes;
    if (packets == 0) packets = 1;  // zero-length messages still send a pkt
    return payload + packets * l.header_bytes;
  }

  /// Serialization time of a payload at link rate.
  sim::TimeNs WireTime(uint64_t payload) const {
    return static_cast<sim::TimeNs>(
        static_cast<double>(WireBytes(payload)) / cost_.link.bytes_per_ns);
  }

  /// Books capacity for a src->dst transfer of `payload` bytes starting no
  /// earlier than `earliest` (virtual time); returns the absolute arrival
  /// time at dst. Loopback transfers cost link.loopback_ns.
  sim::TimeNs ReserveTransfer(NodeId src, NodeId dst, uint64_t payload,
                              sim::TimeNs earliest = 0) {
    KD_DCHECK(src < nodes_.size() && dst < nodes_.size());
    sim::TimeNs now = std::max(sim_.Now(), earliest);
    if (src == dst) {
      return now + cost_.link.loopback_ns;
    }
    Node& s = nodes_[src];
    Node& d = nodes_[dst];
    sim::TimeNs wire = WireTime(payload);
    sim::TimeNs tx_end = std::max(now, s.egress_busy_until) + wire;
    s.egress_busy_until = tx_end;
    // Ingress capacity: the receiving port drains at link rate; a transfer
    // lands when both its own serialization is done and the port has drained
    // the preceding traffic.
    sim::TimeNs rx_end = std::max(tx_end, d.ingress_busy_until + wire);
    d.ingress_busy_until = rx_end;
    s.bytes_sent += payload;
    return rx_end + cost_.link.propagation_ns;
  }

  /// Reserves only the reverse-path capacity (used for RDMA Read responses,
  /// which serialize on responder->initiator egress).
  sim::TimeNs ReserveResponse(NodeId responder, NodeId initiator,
                              uint64_t payload, sim::TimeNs earliest) {
    return ReserveTransfer(responder, initiator, payload, earliest);
  }

  uint64_t bytes_sent(NodeId id) const { return nodes_[id].bytes_sent; }
  const CostModel& cost() const { return cost_; }
  sim::Simulator& simulator() { return sim_; }
  /// Shared metrics/tracing sink for everything attached to this fabric.
  obs::Observability& obs() { return obs_; }

 private:
  struct Node {
    std::string name;
    sim::TimeNs egress_busy_until;
    sim::TimeNs ingress_busy_until;
    uint64_t bytes_sent;
    uint32_t shard;  // simulator shard affinity (BindNodeShard)
  };

  sim::Simulator& sim_;
  const CostModel& cost_;
  obs::Observability obs_;
  std::vector<Node> nodes_;
};

}  // namespace net
}  // namespace kafkadirect

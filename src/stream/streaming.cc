#include "stream/streaming.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/awaitable.h"

namespace kafkadirect {
namespace stream {

std::string ToJson(const TrafficEvent& event) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"lane\":%d,\"cars\":%d,\"avg_speed\":%.2f,\"ts\":%lld}",
                event.lane, event.car_count, event.avg_speed_kmh,
                static_cast<long long>(event.generated_at_ns));
  return buf;
}

namespace {
// Minimal strict scanner for the fixed JSON schema above.
Status ScanField(const std::string& json, const char* key, double* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return Status::Corruption(std::string("missing field: ") + key);
  }
  pos += needle.size();
  char* end = nullptr;
  *out = std::strtod(json.c_str() + pos, &end);
  if (end == json.c_str() + pos) {
    return Status::Corruption(std::string("bad value for field: ") + key);
  }
  return Status::OK();
}
}  // namespace

StatusOr<TrafficEvent> FromJson(const std::string& json) {
  TrafficEvent event;
  double lane, cars, speed, ts;
  KD_RETURN_IF_ERROR(ScanField(json, "lane", &lane));
  KD_RETURN_IF_ERROR(ScanField(json, "cars", &cars));
  KD_RETURN_IF_ERROR(ScanField(json, "avg_speed", &speed));
  KD_RETURN_IF_ERROR(ScanField(json, "ts", &ts));
  event.lane = static_cast<int32_t>(lane);
  event.car_count = static_cast<int32_t>(cars);
  event.avg_speed_kmh = speed;
  event.generated_at_ns = static_cast<int64_t>(ts);
  return event;
}

sim::Co<void> RunSensor(
    sim::Simulator& sim, SensorConfig config, sim::TimeNs duration_ns,
    std::function<sim::Co<Status>(int lane, std::string json)> publish) {
  Random rng(config.seed);
  sim::TimeNs end = sim.Now() + duration_ns;
  sim::TimeNs interval =
      static_cast<sim::TimeNs>(1e9 / config.base_rate_per_sec);
  sim::TimeNs next_burst = sim.Now() + config.burst_period_ns;
  auto emit = [&](int lane) -> sim::Co<Status> {
    TrafficEvent event;
    event.lane = lane;
    event.car_count = static_cast<int32_t>(rng.Range(0, 12));
    event.avg_speed_kmh = 30.0 + rng.NextDouble() * 90.0;
    event.generated_at_ns = sim.Now();
    co_return co_await publish(lane, ToJson(event));
  };
  int lane = 0;
  while (sim.Now() < end) {
    lane ^= 1;  // alternate between the two topics
    Status st = co_await emit(lane);
    if (!st.ok()) co_return;
    if (config.pattern == PublishPattern::kPeriodicBurst &&
        sim.Now() >= next_burst) {
      next_burst += config.burst_period_ns;
      for (int i = 0; i < config.burst_size && sim.Now() < end; i++) {
        lane ^= 1;
        Status burst_st = co_await emit(lane);
        if (!burst_st.ok()) co_return;
      }
    }
    co_await sim::Delay(sim, interval);
  }
}

Status EventEngine::Ingest(const std::string& json, sim::TimeNs now) {
  KD_ASSIGN_OR_RETURN(TrafficEvent event, FromJson(json));
  int64_t delay = now - event.generated_at_ns;
  delays_.Add(delay);
  LaneStats& lane = lanes_[event.lane & 1];
  lane.events++;
  lane.total_cars += event.car_count;
  lane.speed_sum += event.avg_speed_kmh;
  processed_++;
  if (timeline_.empty() ||
      now >= timeline_.back().start + bucket_width_) {
    timeline_.push_back(Bucket{(now / bucket_width_) * bucket_width_, 0, 0});
  }
  Bucket& bucket = timeline_.back();
  bucket.mean_delay_us =
      (bucket.mean_delay_us * bucket.count + delay / 1000.0) /
      (bucket.count + 1);
  bucket.count++;
  return Status::OK();
}

RingIngest::RingIngest(sim::Simulator& sim, net::Fabric& fabric,
                       tcpnet::Network& tcp, net::NodeId node,
                       RingIngestConfig config)
    : sim_(sim) {
  kd::RdmaConsumerConfig rc;
  rc.ring_consume = true;
  rc.ring_capacity = config.ring_capacity;
  rc.head_update_bytes = config.head_update_bytes;
  consumer_ = std::make_unique<kd::RdmaConsumer>(sim, fabric, tcp, node, rc);
}

RingIngest::~RingIngest() = default;

sim::Co<Status> RingIngest::Start(kd::KafkaDirectBroker* leader,
                                  const kafka::TopicPartitionId& tp,
                                  int64_t offset) {
  tp_ = tp;
  next_offset_ = offset;
  Status st = co_await consumer_->Connect(leader);
  if (!st.ok()) co_return st;
  co_return co_await consumer_->Subscribe(tp_, offset);
}

sim::Co<StatusOr<uint64_t>> RingIngest::DrainInto(EventEngine* engine) {
  auto records = co_await consumer_->Poll(tp_);
  if (!records.ok()) co_return records.status();
  uint64_t got = 0;
  for (const kafka::OwnedRecord& record : records.value()) {
    Status st = engine->Ingest(record.value, sim_.Now());
    if (!st.ok()) co_return st;
    next_offset_ = record.offset + 1;
    got++;
  }
  co_return got;
}

sim::Co<Status> RingIngest::Failover(kd::KafkaDirectBroker* leader) {
  co_return co_await consumer_->Resubscribe(leader, tp_, next_offset_);
}

void RingIngest::Close() { consumer_->Close(); }

}  // namespace stream
}  // namespace kafkadirect

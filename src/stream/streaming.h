// Streaming workload from §5.4: an IoT traffic sensor publishes JSON events
// (cars counted + average speed per road lane) into Kafka topics; an event
// processing engine (standing in for the paper's Spark consumer) polls the
// topics and records the delay between event generation and event read —
// the metric Fig. 21 plots.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "direct/rdma_consumer.h"
#include "kafka/protocol.h"
#include "sim/task.h"

namespace kafkadirect {
namespace stream {

/// One IoT traffic-sensor observation.
struct TrafficEvent {
  int32_t lane = 0;
  int32_t car_count = 0;
  double avg_speed_kmh = 0.0;
  int64_t generated_at_ns = 0;
};

/// Serializes the event as JSON (the paper's on-wire format).
std::string ToJson(const TrafficEvent& event);

/// Parses an event produced by ToJson. Strict: returns an error on any
/// malformed field.
StatusOr<TrafficEvent> FromJson(const std::string& json);

enum class PublishPattern {
  kConstantRate,   // fixed messages/second (400/s in the paper)
  kPeriodicBurst,  // constant base rate + a large burst every 10 s
};

struct SensorConfig {
  PublishPattern pattern = PublishPattern::kConstantRate;
  double base_rate_per_sec = 400.0;
  /// Burst: every `burst_period` an extra `burst_size` events are emitted.
  sim::TimeNs burst_period_ns = 10ll * 1000 * 1000 * 1000;
  int burst_size = 2000;
  uint64_t seed = 42;
};

/// Drives a produce callback according to the configured pattern for
/// `duration_ns`. The callback receives the JSON payload and the lane
/// (used to pick the topic: the paper publishes into two topics).
sim::Co<void> RunSensor(
    sim::Simulator& sim, SensorConfig config, sim::TimeNs duration_ns,
    std::function<sim::Co<Status>(int lane, std::string json)> publish);

/// Aggregated per-lane statistics maintained by the engine.
struct LaneStats {
  int64_t events = 0;
  int64_t total_cars = 0;
  double speed_sum = 0.0;

  double MeanSpeed() const { return events == 0 ? 0.0 : speed_sum / events; }
};

/// The event-processing side: parses events, aggregates per lane, and
/// records the generation-to-read delay for each event.
class EventEngine {
 public:
  /// Ingests one raw event payload read from a topic at virtual time `now`.
  Status Ingest(const std::string& json, sim::TimeNs now);

  const Histogram& delays() const { return delays_; }
  Histogram& delays() { return delays_; }
  const LaneStats& lane(int i) const { return lanes_[i & 1]; }
  int64_t events_processed() const { return processed_; }

  /// Time-bucketed mean delays for plotting Fig. 21's time series.
  struct Bucket {
    sim::TimeNs start = 0;
    double mean_delay_us = 0.0;
    int64_t count = 0;
  };
  const std::vector<Bucket>& timeline() const { return timeline_; }
  void set_bucket_width(sim::TimeNs w) { bucket_width_ = w; }

 private:
  Histogram delays_;
  LaneStats lanes_[2];
  int64_t processed_ = 0;
  sim::TimeNs bucket_width_ = 10ll * 1000 * 1000 * 1000;  // 10 s
  std::vector<Bucket> timeline_;
};

struct RingIngestConfig {
  /// Ring data buffer registered for broker pushes.
  uint64_t ring_capacity = 1 << 20;
  /// Consumed-count write-back granularity.
  uint64_t head_update_bytes = 64 * 1024;
};

/// Streaming-side handle on the ring-consume datapath (DESIGN.md §12):
/// wraps an RdmaConsumer configured for broker-pushed ring buffers so
/// streaming scenarios ingest events over the fastest consume path — no
/// RDMA Reads, no per-batch notifications — and survive leader moves by
/// re-granting the ring on the new leader at the next undelivered offset.
class RingIngest {
 public:
  RingIngest(sim::Simulator& sim, net::Fabric& fabric, tcpnet::Network& tcp,
             net::NodeId node, RingIngestConfig config = {});
  ~RingIngest();

  /// Connects to `leader` and registers a push ring for `tp` starting at
  /// `offset`.
  sim::Co<Status> Start(kd::KafkaDirectBroker* leader,
                        const kafka::TopicPartitionId& tp, int64_t offset);

  /// Drains the local ring once, ingesting every complete event into
  /// `engine` stamped with the current virtual time. Returns the number of
  /// events ingested; advances the resume offset past each one.
  sim::Co<StatusOr<uint64_t>> DrainInto(EventEngine* engine);

  /// Re-grants the ring on `leader` after a leader move, resuming from the
  /// next undelivered offset (exactly-once across the failover).
  sim::Co<Status> Failover(kd::KafkaDirectBroker* leader);

  /// Offset of the next event this ingester has not yet delivered.
  int64_t next_offset() const { return next_offset_; }
  kd::RdmaConsumer& consumer() { return *consumer_; }

  void Close();

 private:
  sim::Simulator& sim_;
  kafka::TopicPartitionId tp_;
  int64_t next_offset_ = 0;
  std::unique_ptr<kd::RdmaConsumer> consumer_;
};

}  // namespace stream
}  // namespace kafkadirect

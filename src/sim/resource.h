// Resource: a FIFO server modeling a contended serial device — a CPU
// thread pool slot, the RNIC atomic-execution unit, a link DMA engine.
// Callers co_await Use(service_time); requests queue when all servers are
// busy. Tracks busy time for utilization reporting.
#pragma once

#include "sim/awaitable.h"
#include "sim/semaphore.h"
#include "sim/task.h"

namespace kafkadirect {
namespace sim {

class Resource {
 public:
  /// `servers`: how many requests can be in service concurrently (e.g. 3
  /// network threads => 3).
  Resource(Simulator& sim, int64_t servers = 1)
      : sim_(sim), sem_(sim, servers), servers_(servers) {}

  /// Occupies one server for `service_ns` of virtual time, FIFO-queuing
  /// behind earlier requests.
  Co<void> Use(TimeNs service_ns) {
    co_await sem_.Acquire();
    co_await Delay(sim_, service_ns);
    busy_ns_ += service_ns;
    sem_.Release();
  }

  /// Total service time delivered (across all servers).
  TimeNs busy_ns() const { return busy_ns_; }

  /// Mean utilization in [0,1] over [0, now].
  double Utilization() const {
    TimeNs now = sim_.Now();
    if (now <= 0) return 0.0;
    return static_cast<double>(busy_ns_) /
           (static_cast<double>(now) * static_cast<double>(servers_));
  }

  int64_t servers() const { return servers_; }
  size_t queue_length() const { return sem_.num_waiters(); }

 private:
  Simulator& sim_;
  Semaphore sem_;
  int64_t servers_;
  TimeNs busy_ns_ = 0;
};

}  // namespace sim
}  // namespace kafkadirect

#include "sim/sharded.h"

#include <algorithm>

namespace kafkadirect {
namespace sim {

namespace {

/// Saturating add on virtual time (horizons reach kNoEventTime).
TimeNs SatAdd(TimeNs a, TimeNs b) {
  TimeNs r;
  if (__builtin_add_overflow(a, b, &r)) return Simulator::kNoEventTime;
  return r;
}

/// Runs `body(shard, is_home)` once per shard that this worker wins for
/// phase `gen`: home shards (shard % workers == worker) first for
/// locality, then a stealing scan over everything still unclaimed.
/// Claim tags are strictly increasing per phase, so exactly one worker
/// wins each shard each phase — stealing moves *which thread* runs a
/// shard, never what the shard executes.
template <typename Body>
void ClaimShards(std::atomic<uint64_t>* claims, uint32_t num_shards,
                 uint32_t worker, uint32_t num_workers, uint64_t gen,
                 Body&& body) {
  for (uint32_t s = worker; s < num_shards; s += num_workers) {
    if (claims[s].exchange(gen, std::memory_order_acq_rel) < gen) {
      body(s, true);
    }
  }
  for (uint32_t s = 0; s < num_shards; s++) {
    if (claims[s].load(std::memory_order_acquire) >= gen) continue;
    if (claims[s].exchange(gen, std::memory_order_acq_rel) < gen) {
      body(s, false);
    }
  }
}

}  // namespace

ShardedSimulator::ShardedSimulator(ShardedConfig config)
    : config_(config),
      num_shards_(std::max<uint32_t>(1, config.num_shards)),
      num_workers_(config.deterministic
                       ? 1
                       : std::min(std::max<uint32_t>(1, config.num_threads),
                                  std::max<uint32_t>(1, config.num_shards))),
      lookahead_(std::max<TimeNs>(1, config.lookahead_ns)) {
  KD_CHECK(num_shards_ <= 256) << "mailbox matrix is O(shards^2)";
  shards_.reserve(num_shards_);
  for (uint32_t i = 0; i < num_shards_; i++) {
    auto sh = std::make_unique<Simulator>(/*register_log_clock=*/i == 0);
    sh->engine_ = this;
    sh->shard_id_ = i;
    shards_.push_back(std::move(sh));
  }
  mailboxes_.reserve(static_cast<size_t>(num_shards_) * num_shards_);
  for (size_t i = 0; i < static_cast<size_t>(num_shards_) * num_shards_;
       i++) {
    mailboxes_.push_back(std::make_unique<Mailbox>(config.mailbox_capacity));
  }
  stats_.resize(num_shards_);
  drain_scratch_.resize(num_shards_);
  next_time_.assign(num_shards_, Simulator::kNoEventTime);
  claims_ = std::make_unique<std::atomic<uint64_t>[]>(num_shards_);
  for (uint32_t i = 0; i < num_shards_; i++) claims_[i].store(0);
}

ShardedSimulator::~ShardedSimulator() = default;

TimeNs ShardedSimulator::Now() const {
  if (config_.deterministic) return merged_now_;
  TimeNs t = shards_[0]->Now();
  for (uint32_t s = 1; s < num_shards_; s++) {
    t = std::min(t, shards_[s]->Now());
  }
  return t;
}

bool ShardedSimulator::Idle() const {
  for (const auto& sh : shards_) {
    if (!sh->Idle()) return false;
  }
  for (const auto& mb : mailboxes_) {
    if (!mb->ring.empty()) return false;
    std::lock_guard<std::mutex> lock(mb->spill_mu);
    if (!mb->spill.empty()) return false;
  }
  return true;
}

uint64_t ShardedSimulator::events_processed() const {
  uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->events_processed();
  return total;
}

ShardStats ShardedSimulator::shard_stats(uint32_t i) const {
  KD_DCHECK(i < num_shards_);
  ShardStats s = stats_[i];
  s.events = shards_[i]->events_processed();
  return s;
}

void ShardedSimulator::CrossSend(uint32_t src, uint32_t dst, TimeNs delay,
                                 InlineFunction fn) {
  KD_DCHECK(src < num_shards_ && dst < num_shards_);
  if (delay < 0) delay = 0;
  if (dst == src) {
    shards_[src]->Schedule(delay, std::move(fn));
    return;
  }
  // Conservative correctness: a remote delivery may not land inside the
  // window the destination shard is concurrently executing.
  if (delay < lookahead_) {
    stats_[src].lookahead_clamps++;
    delay = lookahead_;
  }
  const TimeNs dst_time = SatAdd(shards_[src]->Now(), delay);
  if (!running_) {
    // Setup phase (no shard executing): schedule directly, same in both
    // modes so the schedule stays mode-independent.
    shards_[dst]->ScheduleAt(dst_time, std::move(fn));
    return;
  }
  CrossEvent ev{dst_time, stats_[src].cross_sent, std::move(fn)};
  Mailbox& mb = mailbox(src, dst);
  if (!mb.ring.TryPush(std::move(ev))) {
    std::lock_guard<std::mutex> lock(mb.spill_mu);
    mb.spill.push_back(std::move(ev));
    stats_[src].mailbox_spills++;
  }
  stats_[src].cross_sent++;
}

void ShardedSimulator::DrainInbox(uint32_t dst) {
  std::vector<DrainEntry>& pend = drain_scratch_[dst];
  pend.clear();
  for (uint32_t src = 0; src < num_shards_; src++) {
    if (src == dst) continue;
    Mailbox& mb = mailbox(src, dst);
    CrossEvent ev;
    while (mb.ring.TryPop(ev)) {
      pend.push_back(DrainEntry{ev.dst_time, src, ev.seq, std::move(ev.fn)});
    }
    std::lock_guard<std::mutex> lock(mb.spill_mu);
    for (CrossEvent& sp : mb.spill) {
      pend.push_back(DrainEntry{sp.dst_time, src, sp.seq, std::move(sp.fn)});
    }
    mb.spill.clear();
  }
  if (!pend.empty()) {
    ShardStats& st = stats_[dst];
    if (pend.size() > st.mailbox_max_depth) st.mailbox_max_depth = pend.size();
    st.cross_received += pend.size();
    // Fixed merge order — (arrival time, source shard, source sequence) —
    // makes delivery order independent of drain interleaving and thread
    // count; equal-arrival-time ties enter the destination wheel bucket
    // in exactly this order.
    std::sort(pend.begin(), pend.end(),
              [](const DrainEntry& a, const DrainEntry& b) {
                if (a.dst_time != b.dst_time) return a.dst_time < b.dst_time;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (DrainEntry& e : pend) {
      shards_[dst]->ScheduleAt(e.dst_time, std::move(e.fn));
    }
    pend.clear();
  }
  next_time_[dst] = shards_[dst]->NextEventTime();
}

void ShardedSimulator::ComputeEpochWindow() {
  phase_gen_++;
  TimeNs min_next = Simulator::kNoEventTime;
  for (uint32_t s = 0; s < num_shards_; s++) {
    min_next = std::min(min_next, next_time_[s]);
  }
  if (StopRequested() || min_next == Simulator::kNoEventTime ||
      min_next > run_limit_) {
    done_ = true;
    return;
  }
  epoch_end_ = std::min(SatAdd(min_next, lookahead_), SatAdd(run_limit_, 1));
  epochs_++;
}

void ShardedSimulator::WorkerLoop(uint32_t worker) {
  for (;;) {
    // Drain phase: deliver last epoch's cross-shard traffic and publish
    // per-shard next-event times. phase_gen_ is stable here — it is only
    // written inside barrier completions.
    ClaimShards(claims_.get(), num_shards_, worker, num_workers_, phase_gen_,
                [&](uint32_t s, bool) { DrainInbox(s); });
    barrier_.ArriveAndWait([this] { ComputeEpochWindow(); });
    if (done_) return;
    // Execute phase: each claimed shard runs every event inside the
    // epoch window [epoch_start, epoch_end_).
    ClaimShards(claims_.get(), num_shards_, worker, num_workers_, phase_gen_,
                [&](uint32_t s, bool home) {
                  ShardStats& st = stats_[s];
                  if (!home) st.steals++;
                  Simulator& sh = *shards_[s];
                  const uint64_t before = sh.events_processed_;
                  while (sh.ExecuteNextBefore(epoch_end_)) {
                  }
                  if (sh.events_processed_ != before) st.epochs_active++;
                  if (sh.stopped_) {
                    stop_.store(true, std::memory_order_relaxed);
                  }
                });
    barrier_.ArriveAndWait([this] { phase_gen_++; });
  }
}

void ShardedSimulator::RunParallel(TimeNs limit) {
  run_limit_ = limit;
  done_ = false;
  stop_.store(false, std::memory_order_relaxed);
  for (auto& sh : shards_) sh->stopped_ = false;
  running_ = true;
  barrier_.Reset(num_workers_);
  std::vector<std::thread> pool;
  pool.reserve(num_workers_ - 1);
  for (uint32_t w = 1; w < num_workers_; w++) {
    pool.emplace_back([this, w] { WorkerLoop(w); });
  }
  WorkerLoop(0);
  for (std::thread& t : pool) t.join();
  running_ = false;
  if (!StopRequested() && limit != Simulator::kNoEventTime) {
    for (auto& sh : shards_) sh->AdvanceTo(limit);
  }
}

void ShardedSimulator::RunMerged(TimeNs limit,
                                 const std::function<bool()>* done,
                                 TimeNs deadline) {
  run_limit_ = limit;
  stop_.store(false, std::memory_order_relaxed);
  for (auto& sh : shards_) sh->stopped_ = false;
  running_ = true;
  bool interrupted = false;
  std::vector<uint64_t> epoch_start_events(num_shards_);
  while (!interrupted) {
    for (uint32_t s = 0; s < num_shards_; s++) DrainInbox(s);
    TimeNs min_next = Simulator::kNoEventTime;
    for (uint32_t s = 0; s < num_shards_; s++) {
      min_next = std::min(min_next, next_time_[s]);
    }
    if (min_next == Simulator::kNoEventTime || min_next > limit) break;
    const TimeNs epoch_end =
        std::min(SatAdd(min_next, lookahead_), SatAdd(limit, 1));
    epochs_++;
    for (uint32_t s = 0; s < num_shards_; s++) {
      epoch_start_events[s] = shards_[s]->events_processed_;
    }
    // Merged schedule: always execute the globally earliest event,
    // (time, shard) ordered — the single-threaded golden order. Cross-
    // shard sends still buffer in the mailboxes until the epoch ends, so
    // each shard sees the exact event sequence parallel mode produces.
    for (;;) {
      TimeNs best = epoch_end;
      uint32_t bs = num_shards_;
      for (uint32_t s = 0; s < num_shards_; s++) {
        const TimeNs t = shards_[s]->NextEventTime();
        if (t < best) {
          best = t;
          bs = s;
        }
      }
      if (bs == num_shards_) break;
      if (done != nullptr && (*done)()) {
        interrupted = true;
        break;
      }
      if (best > deadline) {
        interrupted = true;
        break;
      }
      Simulator& sh = *shards_[bs];
      sh.ExecuteNextBefore(epoch_end);
      merged_now_ = sh.now_;
      if (sh.stopped_ || StopRequested()) {
        interrupted = true;
        break;
      }
    }
    for (uint32_t s = 0; s < num_shards_; s++) {
      if (shards_[s]->events_processed_ != epoch_start_events[s]) {
        stats_[s].epochs_active++;
      }
    }
  }
  running_ = false;
  if (!interrupted && limit != Simulator::kNoEventTime) {
    for (auto& sh : shards_) sh->AdvanceTo(limit);
    merged_now_ = limit;
  }
}

void ShardedSimulator::Run() {
  if (config_.deterministic) {
    RunMerged(Simulator::kNoEventTime, nullptr, Simulator::kNoEventTime);
  } else {
    RunParallel(Simulator::kNoEventTime);
  }
}

void ShardedSimulator::RunUntil(TimeNs time) {
  if (config_.deterministic) {
    RunMerged(time, nullptr, Simulator::kNoEventTime);
  } else {
    RunParallel(time);
  }
}

void ShardedSimulator::RunUntilDone(const std::function<bool()>& done,
                                    TimeNs deadline) {
  KD_CHECK(config_.deterministic)
      << "RunUntilDone needs deterministic mode: a done-predicate over "
         "cross-shard state has no defined evaluation point under "
         "parallel execution";
  RunMerged(Simulator::kNoEventTime, &done, deadline);
}

}  // namespace sim
}  // namespace kafkadirect

// Co<T>: a lazily-started coroutine, awaitable from other coroutines.
// Spawn(): launches a Co<void> as a detached root task on the simulator.
//
// Lifetime rules:
//  - An awaited Co<T> is owned by the awaiting frame; its handle is
//    destroyed by ~Co after completion (symmetric transfer resumes the
//    awaiter first).
//  - A spawned Co<void> owns itself; its frame self-destructs at
//    final_suspend.
#pragma once

#include <coroutine>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "sim/simulator.h"

namespace kafkadirect {
namespace sim {

template <typename T>
class Co;

namespace internal {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool detached = false;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.detached) {
        // Root task: nobody awaits it; free the frame now.
        h.destroy();
        return std::noop_coroutine();
      }
      if (p.continuation) return p.continuation;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept {
    KD_CHECK(false) << "unhandled exception escaped a sim coroutine";
  }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;  // T need not be default-constructible
  Co<T> get_return_object() noexcept;
  void return_value(T v) noexcept { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Co<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace internal

/// A coroutine computing a T (or void). Must be either co_awaited exactly
/// once or passed to Spawn().
template <typename T = void>
class [[nodiscard]] Co {
 public:
  using promise_type = internal::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Co() = default;
  explicit Co(Handle h) : h_(h) {}
  Co(Co&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      Destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { Destroy(); }

  bool valid() const { return h_ != nullptr; }

  // --- awaitable interface ---
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;  // start the child coroutine (symmetric transfer)
  }
  T await_resume() noexcept {
    if constexpr (!std::is_void_v<T>) {
      return std::move(*h_.promise().value);
    }
  }

  /// Releases ownership of the handle (used by Spawn).
  Handle Detach() {
    Handle h = std::exchange(h_, nullptr);
    h.promise().detached = true;
    return h;
  }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  Handle h_ = nullptr;
};

namespace internal {
template <typename T>
Co<T> Promise<T>::get_return_object() noexcept {
  return Co<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}
inline Co<void> Promise<void>::get_return_object() noexcept {
  return Co<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}
}  // namespace internal

/// Launches `task` as a detached root coroutine; it starts at the current
/// virtual time (via the event queue, preserving deterministic ordering).
inline void Spawn(Simulator& sim, Co<void> task) {
  auto h = task.Detach();
  sim.Schedule(0, [h]() { h.resume(); });
}

}  // namespace sim
}  // namespace kafkadirect

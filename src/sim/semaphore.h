// Async counting semaphore (used for replication credits, QP send-queue
// depth, pipelining windows) and an async mutex built on the same waiter
// discipline.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>

#include "common/logging.h"
#include "sim/simulator.h"

namespace kafkadirect {
namespace sim {

/// FIFO counting semaphore. Permits handed directly to waiters on Release,
/// so wakeups can't be stolen by later acquirers.
class Semaphore {
 public:
  Semaphore(Simulator& sim, int64_t initial) : sim_(sim), count_(initial) {
    KD_DCHECK(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// co_await sem.Acquire() — takes one permit, blocking if none available.
  auto Acquire() { return Awaiter(this); }

  /// Non-blocking acquire; true on success.
  bool TryAcquire() {
    if (count_ > 0 && waiters_.empty()) {
      count_--;
      return true;
    }
    return false;
  }

  /// Returns `n` permits, waking up to `n` waiters in FIFO order.
  void Release(int64_t n = 1) {
    KD_DCHECK(n >= 0);
    while (n > 0 && !waiters_.empty()) {
      auto node = waiters_.front();
      waiters_.pop_front();
      n--;
      sim_.Schedule(0, [node]() { node->h.resume(); });
    }
    count_ += n;
  }

  int64_t available() const { return count_; }
  size_t num_waiters() const { return waiters_.size(); }

 private:
  struct Node {
    std::coroutine_handle<> h;
  };

  class Awaiter {
   public:
    explicit Awaiter(Semaphore* sem) : sem_(sem) {}
    bool await_ready() noexcept {
      // Fast path consumes a permit immediately; FIFO is respected by never
      // overtaking existing waiters.
      if (sem_->count_ > 0 && sem_->waiters_.empty()) {
        sem_->count_--;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      auto node = std::make_shared<Node>();
      node->h = h;
      sem_->waiters_.push_back(node);
    }
    // Slow path: Release handed the permit to this waiter directly.
    void await_resume() noexcept {}

   private:
    Semaphore* sem_;
  };

  Simulator& sim_;
  int64_t count_;
  std::deque<std::shared_ptr<Node>> waiters_;
};

/// Async mutual exclusion (per-TopicPartition append lock in the broker).
class AsyncMutex {
 public:
  explicit AsyncMutex(Simulator& sim) : sem_(sim, 1) {}

  /// co_await mu.Lock(); ... mu.Unlock();
  auto Lock() { return sem_.Acquire(); }
  void Unlock() { sem_.Release(); }
  bool TryLock() { return sem_.TryAcquire(); }

 private:
  Semaphore sem_;
};

}  // namespace sim
}  // namespace kafkadirect

// Channel<T>: an unbounded async MPMC queue connecting coroutines (the
// "shared request queue" pattern from Kafka's broker, completion queues,
// socket receive queues, ...).
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>

#include "common/logging.h"
#include "sim/simulator.h"

namespace kafkadirect {
namespace sim {

/// Unbounded FIFO channel. Pop() suspends while empty; Close() wakes all
/// blocked poppers with std::nullopt once drained.
///
/// Items are handed directly to blocked poppers (rendezvous), so a popper
/// that was woken for an item is guaranteed to receive that item even if
/// other poppers race in between. Invariant: waiters and queued items are
/// never both non-empty.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues an item; hands it to the longest-blocked popper if any.
  void Push(T item) {
    KD_DCHECK(!closed_) << "push on closed channel";
    if (!waiters_.empty()) {
      auto node = waiters_.front();
      waiters_.pop_front();
      node->value = std::move(item);
      sim_.Schedule(0, [node]() { node->h.resume(); });
      return;
    }
    items_.push_back(std::move(item));
  }

  /// co_await ch.Pop() — next item, or nullopt if the channel is closed and
  /// drained.
  auto Pop() { return PopAwaiter(this); }

  /// Borrowed view of the next item; nullptr when empty.
  const T* PeekFront() const {
    return items_.empty() ? nullptr : &items_.front();
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  /// After Close, Pop() returns remaining items then nullopt.
  void Close() {
    closed_ = true;
    while (!waiters_.empty()) {
      auto node = waiters_.front();
      waiters_.pop_front();
      sim_.Schedule(0, [node]() { node->h.resume(); });
    }
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool closed() const { return closed_; }
  size_t num_waiters() const { return waiters_.size(); }

 private:
  struct Node {
    std::coroutine_handle<> h;
    std::optional<T> value;  // set by Push on direct handoff
  };

  class PopAwaiter {
   public:
    explicit PopAwaiter(Channel* ch) : ch_(ch) {}

    bool await_ready() const noexcept {
      return !ch_->items_.empty() || ch_->closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      node_ = std::make_shared<Node>();
      node_->h = h;
      ch_->waiters_.push_back(node_);
    }
    std::optional<T> await_resume() {
      if (node_ != nullptr && node_->value.has_value()) {
        return std::move(node_->value);
      }
      if (!ch_->items_.empty()) {
        T v = std::move(ch_->items_.front());
        ch_->items_.pop_front();
        return v;
      }
      return std::nullopt;  // closed (or woken by Close)
    }

   private:
    Channel* ch_;
    std::shared_ptr<Node> node_;
  };

  Simulator& sim_;
  std::deque<T> items_;
  std::deque<std::shared_ptr<Node>> waiters_;
  bool closed_ = false;
};

}  // namespace sim
}  // namespace kafkadirect

// Awaitable building blocks: Delay and Event (one-shot/resettable signal
// with optional timeout).
//
// Wakeup discipline: every resumption goes through the simulator's event
// queue (never a direct resume from the signaling context). This keeps
// execution order deterministic and bounds native stack depth.
#pragma once

#include <coroutine>
#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace kafkadirect {
namespace sim {

/// co_await Delay(sim, ns) — suspends for `ns` of virtual time.
class Delay {
 public:
  Delay(Simulator& sim, TimeNs ns) : sim_(sim), ns_(ns) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.Schedule(ns_, [h]() { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  TimeNs ns_;
};

/// co_await Yield(sim) — reschedules at the current time, letting other
/// ready events run first.
inline Delay Yield(Simulator& sim) { return Delay(sim, 0); }

/// A broadcast signal. Waiters block until Set() is called; WaitFor adds a
/// timeout. Set wakes all current waiters. Reset() re-arms the event.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}

  bool is_set() const { return set_; }

  void Set() {
    if (set_) return;
    set_ = true;
    FireAll();
  }

  void Reset() { set_ = false; }

  /// Wakes current waiters without latching the set state (condition
  /// variable style notify; waiters must re-check their predicate).
  void Pulse() { FireAll(); }

  /// co_await event.Wait() — returns immediately if already set.
  auto Wait() { return Waiter(this, -1); }

  /// co_await event.WaitFor(ns) — true if the event fired, false on timeout.
  auto WaitFor(TimeNs timeout) { return Waiter(this, timeout); }

 private:
  struct Node {
    std::coroutine_handle<> h;
    bool done = false;   // resume already scheduled
    bool result = false; // true = signaled, false = timed out
  };

  class Waiter {
   public:
    Waiter(Event* ev, TimeNs timeout) : ev_(ev), timeout_(timeout) {}

    bool await_ready() const noexcept { return ev_->set_; }
    void await_suspend(std::coroutine_handle<> h) {
      node_ = std::make_shared<Node>();
      node_->h = h;
      if (ev_->waiters_.size() >= 16) {
        // Drop nodes left behind by timed-out waits.
        std::erase_if(ev_->waiters_,
                      [](const std::shared_ptr<Node>& n) { return n->done; });
      }
      ev_->waiters_.push_back(node_);
      if (timeout_ >= 0) {
        auto node = node_;
        Simulator& sim = ev_->sim_;
        sim.Schedule(timeout_, [node, &sim]() {
          if (node->done) return;
          node->done = true;
          node->result = false;
          sim.Schedule(0, [node]() { node->h.resume(); });
        });
      }
    }
    bool await_resume() const noexcept {
      return node_ == nullptr ? true : node_->result;
    }

   private:
    Event* ev_;
    TimeNs timeout_;
    std::shared_ptr<Node> node_;
  };

  void FireAll() {
    std::vector<std::shared_ptr<Node>> waiters;
    waiters.swap(waiters_);
    for (auto& node : waiters) {
      if (node->done) continue;
      node->done = true;
      node->result = true;
      sim_.Schedule(0, [node]() { node->h.resume(); });
    }
  }

  Simulator& sim_;
  bool set_ = false;
  std::vector<std::shared_ptr<Node>> waiters_;
};

}  // namespace sim
}  // namespace kafkadirect

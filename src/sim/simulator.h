// Deterministic discrete-event simulator with a virtual nanosecond clock.
//
// All concurrency in this codebase (broker threads, client dispatchers, RNIC
// engines) is expressed as coroutines scheduled on one Simulator instance.
// Events at equal timestamps fire in schedule order (FIFO by sequence
// number), which makes every run bit-reproducible.
//
// The hot path is allocation-free and mostly comparison-free. Callables are
// stored in an InlineFunction (small-buffer optimised, 48 bytes inline)
// parked in a stable slot arena. Events within the next kWheelSize
// nanoseconds go into a timing wheel: one bucket per nanosecond, each an
// intrusive FIFO list threaded through the slot arena, with an occupancy
// bitmap scanned by count-trailing-zeros to find the next event in O(1).
// Events beyond the window land in an overflow 4-ary min-heap of 24-byte
// POD keys and are decanted into the wheel — in (time, seq) order — only
// when the wheel is completely empty.
//
// Pop order equals the global (time, seq) minimum at every step: wheel
// buckets each hold exactly one timestamp and are appended in seq order
// (overflow refills happen before any later-scheduled push can target the
// window), and (time, seq) is a strict total order. The pop sequence is
// therefore exactly what the original std::priority_queue implementation
// produced.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/inline_function.h"
#include "common/logging.h"

namespace kafkadirect {
namespace sim {

/// Virtual time in nanoseconds since simulation start.
using TimeNs = int64_t;

class ShardedSimulator;

class Simulator {
 public:
  /// `register_log_clock` is false for shards owned by a ShardedSimulator
  /// (a single global log-clock slot cannot follow N concurrent shards;
  /// the engine registers shard 0 only).
  explicit Simulator(bool register_log_clock = true)
      : log_clock_registered_(register_log_clock) {
    std::memset(bucket_head_, 0xFF, sizeof(bucket_head_));  // all kNil
    overflow_.reserve(kInitialEventCapacity);
    slots_.reserve(kInitialEventCapacity);
    free_slots_.reserve(kInitialEventCapacity);
    // KD_LOG lines carry this simulator's virtual timestamp while it lives.
    if (log_clock_registered_) {
      SetLogClock(
          [](const void* ctx) {
            return static_cast<const Simulator*>(ctx)->Now();
          },
          this);
    }
  }
  ~Simulator() {
    if (log_clock_registered_) ClearLogClock(this);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  TimeNs Now() const { return now_; }

  /// Runs `fn` after `delay` nanoseconds of virtual time (>= 0).
  void Schedule(TimeNs delay, InlineFunction fn) {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Runs `fn` at absolute virtual time `time` (clamped to now).
  void ScheduleAt(TimeNs time, InlineFunction fn);

  /// Processes events until the queue is empty or Stop() is called.
  void Run();

  /// Processes events with timestamps <= `time`; leaves Now() == `time`
  /// if the queue drained earlier.
  void RunUntil(TimeNs time);

  /// RunUntil(Now() + duration).
  void RunFor(TimeNs duration) { RunUntil(now_ + duration); }

  /// Processes events until `done()` returns true (checked after each
  /// event), the queue drains, or `deadline` passes. The standard driver
  /// for workloads with background activity (replica fetchers, pollers)
  /// that never lets the event queue drain on its own.
  void RunUntilDone(const std::function<bool()>& done, TimeNs deadline);

  /// Makes Run()/RunUntil() return after the current event completes.
  /// Inside a ShardedSimulator, stopping one shard stops the whole engine
  /// at the next epoch boundary.
  void Stop() { stopped_ = true; }

  /// True after Stop() until the next Run*/engine pass clears it.
  bool stopped() const { return stopped_; }

  /// True if no events are pending.
  bool Idle() const { return wheel_count_ == 0 && overflow_.empty(); }

  /// Total events processed (for tests and sanity limits).
  uint64_t events_processed() const { return events_processed_; }

  // --- Sharded-engine interface (sim/sharded.h, DESIGN.md §11) ----------
  // These exist so a ShardedSimulator can drive many Simulator instances
  // as shards without touching the single-threaded hot path above.

  /// Sentinel returned by NextEventTime() when no event is pending.
  static constexpr TimeNs kNoEventTime = INT64_MAX;

  /// Timestamp of the earliest pending event, or kNoEventTime when idle.
  TimeNs NextEventTime() const { return Idle() ? kNoEventTime : PeekTime(); }

  /// Pops and runs the earliest event if its timestamp is < `horizon` and
  /// the simulator is neither idle nor stopped. Returns whether an event
  /// ran. This is one iteration of Run() with an exclusive time bound —
  /// the epoch-execution primitive of the sharded engine.
  bool ExecuteNextBefore(TimeNs horizon);

  /// Advances the clock without running events (epoch/RunUntil closure).
  /// Callers must ensure no pending event is earlier than `time`.
  void AdvanceTo(TimeNs time) {
    if (time > now_) now_ = time;
  }

  /// Owning engine and shard index; engine() is nullptr for a standalone
  /// simulator and shard_id() is then 0.
  ShardedSimulator* engine() const { return engine_; }
  uint32_t shard_id() const { return shard_id_; }

  /// Schedules `fn` on shard `dst_shard` of the owning engine, `delay` ns
  /// after this shard's Now(). Remote deliveries travel through the
  /// engine's mailboxes and the delay is raised to the engine lookahead;
  /// dst_shard == shard_id() degenerates to a plain Schedule(). Requires
  /// an owning engine.
  void ScheduleCross(uint32_t dst_shard, TimeNs delay, InlineFunction fn);

 private:
  friend class ShardedSimulator;
  // Wheel window width in nanoseconds (one bucket each). Covers the vast
  // majority of scheduling distances (packet hops, CPU costs, zero-delay
  // coroutine resumptions); longer timers take the overflow heap.
  static constexpr size_t kWheelSize = 1024;
  static constexpr size_t kBitmapWords = kWheelSize / 64;
  static constexpr uint32_t kNil = UINT32_MAX;
  // Enough for the steady-state event population of the largest fig*
  // experiments, so the arena and overflow heap never regrow mid-run.
  static constexpr size_t kInitialEventCapacity = 1024;

  /// Arena cell: the parked callable plus the intrusive bucket-list link.
  struct Slot {
    InlineFunction fn;
    uint32_t next = kNil;
  };

  /// Overflow heap key: trivially copyable, so sifts are plain word moves.
  struct Entry {
    TimeNs time;
    uint64_t seq;
    uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  /// Strict total order: seq breaks every timestamp tie.
  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  static constexpr size_t kHeapArity = 4;

  uint32_t AcquireSlot(InlineFunction fn) {
    if (free_slots_.empty()) {
      const uint32_t slot = static_cast<uint32_t>(slots_.size());
      slots_.push_back(Slot{std::move(fn), kNil});
      return slot;
    }
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].fn = std::move(fn);
    slots_[slot].next = kNil;
    return slot;
  }

  /// Moves the popped event's callable out of the arena and recycles the
  /// slot. The returned InlineFunction must be invoked by the caller (the
  /// arena may regrow while the event runs, so it cannot run in place).
  InlineFunction TakeFn(uint32_t slot) {
    InlineFunction fn = std::move(slots_[slot].fn);
    free_slots_.push_back(slot);
    return fn;
  }

  void AppendToBucket(size_t index, uint32_t slot) {
    if (bucket_head_[index] == kNil) {
      bucket_head_[index] = slot;
      bitmap_[index >> 6] |= 1ull << (index & 63);
    } else {
      slots_[bucket_tail_[index]].next = slot;
    }
    bucket_tail_[index] = slot;
    wheel_count_++;
  }

  /// First occupied bucket at index >= `from`. Requires wheel_count_ > 0.
  size_t FindBucket(size_t from) const {
    size_t w = from >> 6;
    uint64_t word = bitmap_[w] & (~0ull << (from & 63));
    while (word == 0) word = bitmap_[++w];
    return (w << 6) + static_cast<size_t>(__builtin_ctzll(word));
  }

  void SiftUp(size_t i) {
    const Entry v = overflow_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kHeapArity;
      if (!Earlier(v, overflow_[parent])) break;
      overflow_[i] = overflow_[parent];
      i = parent;
    }
    overflow_[i] = v;
  }

  /// Removes and returns the overflow minimum, then re-sifts the displaced
  /// back element down from the root.
  Entry PopOverflowTop() {
    const Entry top = overflow_.front();
    const Entry v = overflow_.back();
    overflow_.pop_back();
    const size_t n = overflow_.size();
    if (n != 0) {
      size_t i = 0;
      for (;;) {
        const size_t first = kHeapArity * i + 1;
        if (first >= n) break;
        const size_t last = std::min(first + kHeapArity, n);
        size_t m = first;
        for (size_t c = first + 1; c < last; c++) {
          if (Earlier(overflow_[c], overflow_[m])) m = c;
        }
        if (!Earlier(overflow_[m], v)) break;
        overflow_[i] = overflow_[m];
        i = m;
      }
      overflow_[i] = v;
    }
    return top;
  }

  /// Re-anchors the window at the overflow minimum and decants every
  /// overflow event inside it, in (time, seq) order. Requires an empty
  /// wheel and a non-empty overflow heap.
  void Refill();

  /// Earliest pending timestamp. Requires !Idle().
  TimeNs PeekTime() const {
    if (wheel_count_ != 0) {
      return wheel_base_ + static_cast<TimeNs>(FindBucket(cursor_));
    }
    return overflow_.front().time;
  }

  /// Removes the earliest event; returns its (time, slot). Requires
  /// !Idle().
  std::pair<TimeNs, uint32_t> PopNext() {
    if (wheel_count_ == 0) Refill();
    const size_t i = FindBucket(cursor_);
    cursor_ = i;
    const uint32_t slot = bucket_head_[i];
    const uint32_t next = slots_[slot].next;
    bucket_head_[i] = next;
    if (next == kNil) bitmap_[i >> 6] &= ~(1ull << (i & 63));
    wheel_count_--;
    return {wheel_base_ + static_cast<TimeNs>(i), slot};
  }

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
  bool log_clock_registered_ = true;

  // Set by ShardedSimulator on construction when this simulator is a shard.
  ShardedSimulator* engine_ = nullptr;
  uint32_t shard_id_ = 0;

  // Timing wheel over [wheel_base_, wheel_base_ + kWheelSize). Buckets are
  // singly-linked FIFO lists through slots_; bitmap_ tracks occupancy.
  // Invariant whenever user code runs: wheel_base_ <= now_, so new events
  // (clamped to now_) never land below cursor_.
  TimeNs wheel_base_ = 0;
  size_t cursor_ = 0;
  size_t wheel_count_ = 0;
  uint64_t bitmap_[kBitmapWords] = {};
  uint32_t bucket_head_[kWheelSize];
  uint32_t bucket_tail_[kWheelSize];

  std::vector<Entry> overflow_;          // 4-ary min-heap, (time, seq)
  std::vector<Slot> slots_;              // parked callables
  std::vector<uint32_t> free_slots_;     // LIFO: reuse the warmest slot
};

}  // namespace sim
}  // namespace kafkadirect

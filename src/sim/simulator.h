// Deterministic discrete-event simulator with a virtual nanosecond clock.
//
// All concurrency in this codebase (broker threads, client dispatchers, RNIC
// engines) is expressed as coroutines scheduled on one Simulator instance.
// Events at equal timestamps fire in schedule order (FIFO by sequence
// number), which makes every run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace kafkadirect {
namespace sim {

/// Virtual time in nanoseconds since simulation start.
using TimeNs = int64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  TimeNs Now() const { return now_; }

  /// Runs `fn` after `delay` nanoseconds of virtual time (>= 0).
  void Schedule(TimeNs delay, std::function<void()> fn) {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Runs `fn` at absolute virtual time `time` (clamped to now).
  void ScheduleAt(TimeNs time, std::function<void()> fn);

  /// Processes events until the queue is empty or Stop() is called.
  void Run();

  /// Processes events with timestamps <= `time`; leaves Now() == `time`
  /// if the queue drained earlier.
  void RunUntil(TimeNs time);

  /// RunUntil(Now() + duration).
  void RunFor(TimeNs duration) { RunUntil(now_ + duration); }

  /// Processes events until `done()` returns true (checked after each
  /// event), the queue drains, or `deadline` passes. The standard driver
  /// for workloads with background activity (replica fetchers, pollers)
  /// that never lets the event queue drain on its own.
  void RunUntilDone(const std::function<bool()>& done, TimeNs deadline);

  /// Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  /// True if no events are pending.
  bool Idle() const { return queue_.empty(); }

  /// Total events processed (for tests and sanity limits).
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Entry {
    TimeNs time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace sim
}  // namespace kafkadirect

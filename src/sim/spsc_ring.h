// SpscRing<T>: a bounded single-producer/single-consumer ring buffer.
//
// The cross-shard mailboxes of the sharded simulator (sim/sharded.h) are
// built on this: during an epoch exactly one worker executes the source
// shard (the producer) and between epochs exactly one worker drains the
// destination shard's inbox (the consumer), so a lock-free SPSC queue is
// sufficient — and keeps locks off the event hot path. Which *thread*
// plays each role may change from epoch to epoch; the epoch barrier
// provides the happens-before edge for the hand-off, and the acquire/
// release pairs on head_/tail_ order payload access within an epoch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kafkadirect {
namespace sim {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full (caller spills elsewhere).
  bool TryPush(T&& v) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    const uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h == buf_.size()) return false;
    buf_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool TryPop(T& out) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    const uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return false;
    out = std::move(buf_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when producer and consumer are quiesced).
  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }
  size_t capacity() const { return buf_.size(); }
  bool empty() const { return size() == 0; }

 private:
  std::vector<T> buf_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
};

}  // namespace sim
}  // namespace kafkadirect

// ShardedSimulator: parallel discrete-event execution with conservative
// lookahead (DESIGN.md §11).
//
// The simulator is sharded into per-domain event queues — one Simulator
// per shard, each keeping its own timing wheel and slot arena — executed
// by a pool of worker threads. Shards advance in lock-step epochs: every
// epoch covers the virtual-time window [T, T + lookahead), where the
// lookahead equals the minimum cross-shard link latency. Within an epoch
// each shard runs its events independently (no cross-shard event can
// land inside the window, so per-shard order is safe); at the epoch
// barrier, events sent between shards are transferred through per-
// (src,dst) SPSC mailbox rings — no locks on the hot path — merged in a
// fixed (arrival time, source shard, source sequence) order, and the
// next epoch starts at the new global-minimum event time.
//
// Work distribution is shard-granular stealing: each epoch, worker w
// first claims its home shards (shard % threads == w) and then steals
// any shard not yet claimed, so an imbalanced epoch does not idle the
// pool. Because claiming never changes *what* a shard executes — only
// which thread executes it — results are bit-identical for every thread
// count, 1 through N.
//
// Determinism mode (`ShardedConfig::deterministic`) executes the same
// sharded structure on one thread in global (time, shard) order — the
// merged schedule. Cross-shard traffic still flows through the mailboxes
// on the same epoch boundaries, so per-shard event order is identical to
// the parallel mode's; for a single shard the merged order is exactly
// the classic single-threaded Simulator order, which is what pins the
// engine to the golden fingerprint test.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/inline_function.h"
#include "common/logging.h"
#include "sim/simulator.h"
#include "sim/spsc_ring.h"

namespace kafkadirect {
namespace sim {

struct ShardedConfig {
  /// Event-queue domains. Model entities are pinned to shards (broker /
  /// fabric-link-group affinity); shard 0 is the default domain.
  uint32_t num_shards = 1;
  /// Worker threads for the parallel mode; clamped to num_shards.
  /// Ignored (single-threaded by construction) in deterministic mode.
  uint32_t num_threads = 1;
  /// Conservative synchronization window: must be <= the minimum
  /// cross-shard delivery latency (net::LinkModel::propagation_ns for
  /// fabric-connected domains). Cross-shard delays below this are
  /// clamped up and counted.
  TimeNs lookahead_ns = 250;
  /// Merge the sharded schedule back into a single-threaded global event
  /// order (verification mode; observationally identical per shard).
  bool deterministic = false;
  /// Slots per (src,dst) mailbox ring; overflow spills to a mutex-guarded
  /// side vector (cold path, counted in ShardStats::mailbox_spills).
  size_t mailbox_capacity = 1024;
};

/// Per-shard engine counters (exported to obs via obs/shard_metrics.h).
/// Cache-line sized so concurrent writers on different shards never share.
struct alignas(64) ShardStats {
  uint64_t events = 0;            // events executed on this shard
  uint64_t epochs_active = 0;     // epochs in which the shard ran >=1 event
  uint64_t steals = 0;            // epochs executed by a non-home worker
  uint64_t cross_sent = 0;        // mailbox events sent from this shard
  uint64_t cross_received = 0;    // mailbox events delivered to this shard
  uint64_t mailbox_spills = 0;    // sends that overflowed a ring (src side)
  uint64_t mailbox_max_depth = 0; // max inbox backlog seen at a drain
  uint64_t lookahead_clamps = 0;  // cross sends with delay < lookahead
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedConfig config);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  uint32_t num_shards() const { return num_shards_; }
  /// Effective worker count (after clamping to the shard count).
  uint32_t num_threads() const { return num_workers_; }
  TimeNs lookahead() const { return lookahead_; }
  bool deterministic() const { return config_.deterministic; }

  /// The shard's event queue; model entities bound to shard i schedule
  /// here exactly as on a standalone Simulator.
  Simulator& shard(uint32_t i) {
    KD_DCHECK(i < num_shards_);
    return *shards_[i];
  }

  /// Conservative global virtual time: the merged clock in deterministic
  /// mode, the minimum shard clock otherwise. Valid between runs.
  TimeNs Now() const;

  /// Runs until every shard is idle and all mailboxes drained (or Stop).
  void Run();

  /// Runs events with timestamps <= `time`; shard clocks end at `time`
  /// when not stopped early.
  void RunUntil(TimeNs time);

  /// Deterministic mode only: processes events in merged order until
  /// `done()` returns true (checked before each event), the engine
  /// drains, Stop() is called, or the next event is past `deadline`.
  /// Mirrors Simulator::RunUntilDone so harness drivers can swap in the
  /// engine without behavioral change.
  void RunUntilDone(const std::function<bool()>& done, TimeNs deadline);

  /// Makes the current run return; parallel mode stops at the next epoch
  /// boundary, deterministic mode before the next event.
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  bool Idle() const;

  /// Sum of events executed across all shards.
  uint64_t events_processed() const;

  /// Epoch barriers crossed over the engine's lifetime.
  uint64_t epochs() const { return epochs_; }

  /// Snapshot of one shard's counters (events filled from the shard).
  ShardStats shard_stats(uint32_t i) const;

  /// Internal: mailbox send from shard `src` to shard `dst`, `delay` ns
  /// after src's Now(). Called via Simulator::ScheduleCross.
  void CrossSend(uint32_t src, uint32_t dst, TimeNs delay, InlineFunction fn);

 private:
  /// Mailbox payload. `seq` is the source shard's monotone cross-send
  /// counter: together with (dst_time, src) it makes the drain merge — and
  /// therefore the whole schedule — a fixed total order.
  struct CrossEvent {
    TimeNs dst_time = 0;
    uint64_t seq = 0;
    InlineFunction fn;
  };

  struct Mailbox {
    explicit Mailbox(size_t cap) : ring(cap) {}
    SpscRing<CrossEvent> ring;
    std::mutex spill_mu;                // cold path only
    std::vector<CrossEvent> spill;
  };

  struct DrainEntry {
    TimeNs dst_time;
    uint32_t src;
    uint64_t seq;
    InlineFunction fn;
  };

  /// Mutex+condvar epoch barrier; the last arriver runs `completion`
  /// under the lock (the coordinator step), so one barrier both
  /// synchronizes a phase and publishes the next epoch window. Blocking
  /// (not spinning) so oversubscribed hosts degrade gracefully.
  class EpochBarrier {
   public:
    void Reset(uint32_t parties) { parties_ = parties; }
    template <typename F>
    void ArriveAndWait(F&& completion) {
      std::unique_lock<std::mutex> lock(mu_);
      const uint64_t gen = generation_;
      if (++waiting_ == parties_) {
        completion();
        waiting_ = 0;
        generation_++;
        cv_.notify_all();
        return;
      }
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
    void ArriveAndWait() {
      ArriveAndWait([] {});
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    uint32_t parties_ = 1;
    uint32_t waiting_ = 0;
    uint64_t generation_ = 0;
  };

  Mailbox& mailbox(uint32_t src, uint32_t dst) {
    return *mailboxes_[src * num_shards_ + dst];
  }

  bool StopRequested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Moves every pending mailbox event bound for `dst` into its event
  /// queue, merged by (dst_time, src, seq), and refreshes next_time_.
  void DrainInbox(uint32_t dst);

  /// Barrier completion: derives the next epoch window from the
  /// freshly-drained per-shard next-event times, or flags completion.
  void ComputeEpochWindow();

  void RunParallel(TimeNs limit);
  void WorkerLoop(uint32_t worker);
  void RunMerged(TimeNs limit, const std::function<bool()>* done,
                 TimeNs deadline);

  ShardedConfig config_;
  uint32_t num_shards_;
  uint32_t num_workers_;
  TimeNs lookahead_;

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;   // [src * N + dst]
  std::vector<ShardStats> stats_;
  std::vector<std::vector<DrainEntry>> drain_scratch_;  // per dst shard

  // True while a Run* is executing events; routes CrossSend through the
  // mailboxes instead of direct scheduling (setup-phase sends).
  bool running_ = false;
  std::atomic<bool> stop_{false};
  uint64_t epochs_ = 0;
  TimeNs merged_now_ = 0;

  // --- parallel-run shared state (written by barrier completions or
  // published across the barrier; workers read after ArriveAndWait) ---
  EpochBarrier barrier_;
  std::unique_ptr<std::atomic<uint64_t>[]> claims_;  // per-shard phase tag
  std::vector<TimeNs> next_time_;                    // per-shard next event
  uint64_t phase_gen_ = 1;
  TimeNs epoch_end_ = 0;
  TimeNs run_limit_ = Simulator::kNoEventTime;
  bool done_ = false;
};

}  // namespace sim
}  // namespace kafkadirect

#include "sim/simulator.h"

#include "common/logging.h"
#include "sim/sharded.h"

namespace kafkadirect {
namespace sim {

void Simulator::ScheduleAt(TimeNs time, InlineFunction fn) {
  if (time < now_) time = now_;
  const uint32_t slot = AcquireSlot(std::move(fn));
  const uint64_t index = static_cast<uint64_t>(time - wheel_base_);
  if (index < kWheelSize) {
    AppendToBucket(static_cast<size_t>(index), slot);
  } else {
    overflow_.push_back(Entry{time, next_seq_, slot});
    SiftUp(overflow_.size() - 1);
  }
  next_seq_++;
}

void Simulator::Refill() {
  KD_DCHECK(wheel_count_ == 0 && !overflow_.empty());
  wheel_base_ = overflow_.front().time;
  cursor_ = 0;
  const TimeNs end = wheel_base_ + static_cast<TimeNs>(kWheelSize);
  while (!overflow_.empty() && overflow_.front().time < end) {
    const Entry e = PopOverflowTop();
    AppendToBucket(static_cast<size_t>(e.time - wheel_base_), e.slot);
  }
}

void Simulator::Run() {
  stopped_ = false;
  while (!Idle() && !stopped_) {
    const auto [time, slot] = PopNext();
    KD_DCHECK(time >= now_);
    now_ = time;
    events_processed_++;
    InlineFunction fn = TakeFn(slot);
    fn();
  }
}

void Simulator::RunUntilDone(const std::function<bool()>& done,
                             TimeNs deadline) {
  stopped_ = false;
  while (!done() && !Idle() && !stopped_ && PeekTime() <= deadline) {
    const auto [time, slot] = PopNext();
    now_ = time;
    events_processed_++;
    InlineFunction fn = TakeFn(slot);
    fn();
  }
}

bool Simulator::ExecuteNextBefore(TimeNs horizon) {
  if (stopped_ || Idle() || PeekTime() >= horizon) return false;
  const auto [time, slot] = PopNext();
  KD_DCHECK(time >= now_);
  now_ = time;
  events_processed_++;
  InlineFunction fn = TakeFn(slot);
  fn();
  return true;
}

void Simulator::ScheduleCross(uint32_t dst_shard, TimeNs delay,
                              InlineFunction fn) {
  KD_CHECK(engine_ != nullptr)
      << "ScheduleCross on a standalone simulator (no owning engine)";
  engine_->CrossSend(shard_id_, dst_shard, delay, std::move(fn));
}

void Simulator::RunUntil(TimeNs time) {
  stopped_ = false;
  while (!Idle() && !stopped_ && PeekTime() <= time) {
    const auto [time_now, slot] = PopNext();
    now_ = time_now;
    events_processed_++;
    InlineFunction fn = TakeFn(slot);
    fn();
  }
  if (!stopped_ && now_ < time) now_ = time;
}

}  // namespace sim
}  // namespace kafkadirect

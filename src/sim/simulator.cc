#include "sim/simulator.h"

#include "common/logging.h"

namespace kafkadirect {
namespace sim {

void Simulator::ScheduleAt(TimeNs time, std::function<void()> fn) {
  if (time < now_) time = now_;
  queue_.push(Entry{time, next_seq_++, std::move(fn)});
}

void Simulator::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top() is const; moving the callable out requires a
    // const_cast. Safe: the entry is popped immediately after.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    KD_DCHECK(entry.time >= now_);
    now_ = entry.time;
    events_processed_++;
    entry.fn();
  }
}

void Simulator::RunUntilDone(const std::function<bool()>& done,
                             TimeNs deadline) {
  stopped_ = false;
  while (!done() && !queue_.empty() && !stopped_ &&
         queue_.top().time <= deadline) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.time;
    events_processed_++;
    entry.fn();
  }
}

void Simulator::RunUntil(TimeNs time) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= time) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.time;
    events_processed_++;
    entry.fn();
  }
  if (!stopped_ && now_ < time) now_ = time;
}

}  // namespace sim
}  // namespace kafkadirect

#include "harness/harness.h"

#include <cstdio>
#include <cstdlib>

#include "obs/shard_metrics.h"
#include "sim/awaitable.h"

namespace kafkadirect {
namespace harness {

namespace {
ObsOptions g_obs_options;
SimEngineOptions g_engine_options;
}  // namespace

void InitObsFromArgs(int argc, char** argv) {
  const std::string kMetrics = "--metrics_json=";
  const std::string kTrace = "--trace_json=";
  const std::string kSlo = "--slo_json=";
  const std::string kFlight = "--flight_dump=";
  const std::string kMonitor = "--monitor_period=";
  const std::string kThreads = "--sim_threads=";
  const std::string kShards = "--sim_shards=";
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind(kMetrics, 0) == 0) {
      g_obs_options.metrics_json = arg.substr(kMetrics.size());
    } else if (arg.rfind(kTrace, 0) == 0) {
      g_obs_options.trace_json = arg.substr(kTrace.size());
    } else if (arg.rfind(kSlo, 0) == 0) {
      g_obs_options.slo_json = arg.substr(kSlo.size());
    } else if (arg.rfind(kFlight, 0) == 0) {
      g_obs_options.flight_dump = arg.substr(kFlight.size());
    } else if (arg.rfind(kMonitor, 0) == 0) {
      g_obs_options.monitor_period_ns =
          std::max<long long>(0, std::atoll(arg.c_str() + kMonitor.size()));
    } else if (arg == "--strict") {
      g_obs_options.strict = true;
    } else if (arg.rfind(kThreads, 0) == 0) {
      g_engine_options.threads =
          std::max(1, std::atoi(arg.c_str() + kThreads.size()));
    } else if (arg.rfind(kShards, 0) == 0) {
      g_engine_options.shards =
          std::max(1, std::atoi(arg.c_str() + kShards.size()));
    }
  }
}

const ObsOptions& obs_options() { return g_obs_options; }
const SimEngineOptions& sim_engine_options() { return g_engine_options; }

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kKafka: return "Kafka";
    case SystemKind::kOsuKafka: return "OSU-Kafka";
    case SystemKind::kKdExclusive: return "KD-Exclusive";
    case SystemKind::kKdShared: return "KD-Shared";
  }
  return "?";
}

TestCluster::TestCluster(DeploymentConfig config)
    : config_(config),
      engine_(sim::ShardedConfig{
          .num_shards = static_cast<uint32_t>(
              config.sim_shards > 0 ? config.sim_shards
                                    : sim_engine_options().shards),
          .num_threads = 1,
          .lookahead_ns = CostModel{}.ShardLookaheadNs(),
          .deterministic = true}) {
  fabric_ = std::make_unique<net::Fabric>(sim(), cost_);
  // Enable tracing before any broker/client defines tracks or records
  // spans, so a --trace_json run captures the full deployment lifecycle.
  if (config.enable_tracing || !g_obs_options.trace_json.empty()) {
    fabric_->obs().tracer.Enable();
  }
  obs::Observability& ob = fabric_->obs();
  // One flight-recorder ring per engine shard, sized before any traffic.
  ob.flight.Configure(engine_.num_shards());
  if (g_obs_options.monitor_period_ns > 0 || g_obs_options.strict) {
    obs::InstallStandardWatchers(ob.monitor);
    ob.monitor.set_strict(g_obs_options.strict);
    // A violation leaves a breadcrumb in the recorder and dumps it before
    // any strict-mode abort, so the moments leading up to the failure are
    // preserved on disk.
    net::Fabric* fab = fabric_.get();
    ob.monitor.set_violation_hook(
        [fab](const obs::Monitor::Violation& v) {
          obs::Observability& o = fab->obs();
          o.flight.Record(0, v.at_ns, obs::FlightEventType::kViolation, 0, 0,
                          0);
          std::string path = g_obs_options.flight_dump.empty()
                                 ? "kd_flight_dump.json"
                                 : g_obs_options.flight_dump;
          o.flight.WriteChromeTraceFile(path);
        });
    if (g_obs_options.monitor_period_ns > 0) {
      ob.monitor.StartTicking(sim(), ob.metrics,
                              g_obs_options.monitor_period_ns);
    }
  }
  tcpnet_ = std::make_unique<tcpnet::Network>(sim(), *fabric_);
  cluster_ = std::make_unique<kafka::Cluster>(sim(), *fabric_, *tcpnet_,
                                              config.broker,
                                              config.num_brokers);
  cluster_->set_broker_factory(
      [](sim::Simulator& sim, net::Fabric& fabric, tcpnet::Network& tcp,
         kafka::BrokerConfig broker_config)
          -> std::unique_ptr<kafka::Broker> {
        return std::make_unique<kd::KafkaDirectBroker>(sim, fabric, tcp,
                                                       broker_config);
      });
  KD_CHECK_OK(cluster_->Start());
  cluster_->StartControlPlane();  // no-op unless broker.control_plane
  for (int b = 0; b < config.num_brokers; b++) {
    auto listener = std::make_shared<osu::OsuListener>(sim());
    osu_listeners_.push_back(listener);
    cluster_->broker(b)->ServeListener(listener);
  }
}

TestCluster::~TestCluster() {
  obs::Observability& ob = fabric_->obs();
  // Coroutine-aware teardown (DESIGN.md §14): stop the periodic monitor
  // tick, walk every broker's Shutdown() (QP disconnects, listener/channel
  // closes, CQ shutdowns), then drain the engine so every woken coroutine
  // frame runs to completion and frees itself. Without this walk, frames
  // parked on never-signalled channels/CQs leak at process exit.
  ob.monitor.StopTicking();
  cluster_->Shutdown();
  engine_.RunUntil(engine_.Now() + Seconds(2));
  // Final invariant sweep at teardown — catches end-state violations even
  // when no tick landed after the last datapath event. Runs before the
  // file exports so a strict abort still leaves the flight dump behind
  // (via the violation hook).
  if (ob.monitor.num_watchers() > 0) {
    ob.monitor.CheckNow(ob.metrics, engine_.Now());
  }
  if (!g_obs_options.metrics_json.empty()) {
    obs::ExportShardStats(ob.metrics, engine_);
    KD_CHECK(ob.metrics.WriteJsonFile(g_obs_options.metrics_json))
        << "cannot write " << g_obs_options.metrics_json;
  }
  if (!g_obs_options.trace_json.empty()) {
    KD_CHECK(ob.tracer.WriteChromeTraceFile(g_obs_options.trace_json))
        << "cannot write " << g_obs_options.trace_json;
  }
  if (!g_obs_options.slo_json.empty()) {
    KD_CHECK(ob.slo.WriteJsonFile(g_obs_options.slo_json))
        << "cannot write " << g_obs_options.slo_json;
  }
  if (!g_obs_options.flight_dump.empty()) {
    KD_CHECK(ob.flight.WriteChromeTraceFile(g_obs_options.flight_dump))
        << "cannot write " << g_obs_options.flight_dump;
  }
}

net::NodeId TestCluster::AddClientNode(const std::string& name) {
  net::NodeId node = fabric_->AddNode(name);
  client_rnics_[node] = std::make_unique<rdma::Rnic>(sim(), *fabric_, node);
  return node;
}

rdma::Rnic& TestCluster::ClientRnic(net::NodeId node) {
  return *client_rnics_.at(node);
}

void TestCluster::RunToFlag(const bool* flag, sim::TimeNs deadline) {
  engine_.RunUntilDone([flag]() { return *flag; }, engine_.Now() + deadline);
  KD_CHECK(*flag) << "workload did not finish before the deadline";
}

void TestCluster::RunUntilCount(const int* counter, int target,
                                sim::TimeNs deadline) {
  engine_.RunUntilDone([counter, target]() { return *counter >= target; },
                       engine_.Now() + deadline);
  KD_CHECK(*counter >= target) << "workload did not finish: " << *counter
                               << "/" << target;
}

namespace {

uint64_t NextTopicId() {
  static uint64_t next = 0;
  return next++;
}

/// State shared by all producers of one workload run.
struct ProduceRun {
  int connected = 0;
  int done = 0;
  sim::TimeNs started_at = 0;
  std::unique_ptr<sim::Event> go;
  WorkloadResult result;
};

sim::Co<void> OneProducer(TestCluster* cluster, SystemKind kind,
                          ProduceOptions options, std::string topic, int index,
                          ProduceRun* run) {
  kafka::TopicPartitionId tp{topic, index % options.partitions};
  net::NodeId node =
      cluster->AddClientNode("producer-" + std::to_string(index));
  std::string value(options.record_size, 'w');
  // SLO tenancy: producer i is tenant i+1 (0 = untagged/preload). The id
  // lands in every batch header's producer_id, which consumers read back
  // to attribute delivery delay and goodput per tenant.
  const uint64_t tenant = static_cast<uint64_t>(index) + 1;

  // Connect phase.
  std::unique_ptr<kafka::TcpProducer> tcp_producer;
  std::unique_ptr<kd::RdmaProducer> rdma_producer;
  switch (kind) {
    case SystemKind::kKafka: {
      tcp_producer = std::make_unique<kafka::TcpProducer>(
          cluster->sim(), cluster->tcp(), node,
          kafka::ProducerConfig{.acks = options.acks,
                                .producer_id = tenant,
                                .max_inflight = options.max_inflight});
      KD_CHECK_OK(co_await tcp_producer->Connect(cluster->Leader(tp)->node()));
      break;
    }
    case SystemKind::kOsuKafka: {
      tcp_producer = std::make_unique<kafka::TcpProducer>(
          cluster->sim(), cluster->tcp(), node,
          kafka::ProducerConfig{.acks = options.acks,
                                .producer_id = tenant,
                                .max_inflight = options.max_inflight});
      auto chan = co_await osu::OsuConnect(
          cluster->sim(), cluster->fabric(), cluster->ClientRnic(node),
          cluster->Leader(tp), cluster->OsuListenerOf(tp));
      KD_CHECK(chan.ok()) << chan.status().ToString();
      KD_CHECK_OK(tcp_producer->ConnectWith(chan.value()));
      break;
    }
    case SystemKind::kKdExclusive:
    case SystemKind::kKdShared: {
      rdma_producer = std::make_unique<kd::RdmaProducer>(
          cluster->sim(), cluster->fabric(), cluster->tcp(), node,
          kd::RdmaProducerConfig{
              .exclusive = kind == SystemKind::kKdExclusive,
              .max_inflight = options.max_inflight,
              .producer_id = tenant,
              .signal_interval = options.signal_interval,
              .notify_mode = options.notify_mode,
              .notify_crossover_bytes = options.notify_crossover_bytes});
      kd::KafkaDirectBroker* leader = cluster->Leader(tp);
      KD_CHECK_OK(co_await rdma_producer->Connect(leader, tp));
      break;
    }
  }

  // Barrier: bandwidth excludes connection setup.
  run->connected++;
  if (run->connected == options.producers) {
    run->started_at = cluster->sim().Now();
    run->go->Set();
  } else {
    co_await run->go->Wait();
  }

  for (int i = 0; i < options.records_per_producer; i++) {
    if (options.max_inflight == 1) {
      if (tcp_producer != nullptr) {
        auto off =
            co_await tcp_producer->Produce(tp, Slice("k", 1), Slice(value));
        if (!off.ok()) run->result.errors++;
      } else {
        auto off =
            co_await rdma_producer->Produce(Slice("k", 1), Slice(value));
        if (!off.ok()) run->result.errors++;
      }
    } else if (tcp_producer != nullptr) {
      Status st = co_await tcp_producer->ProduceAsync(tp, Slice("k", 1),
                                                      Slice(value));
      if (!st.ok()) run->result.errors++;
    } else {
      Status st = co_await rdma_producer->ProduceAsync(Slice("k", 1),
                                                       Slice(value));
      if (!st.ok()) run->result.errors++;
    }
  }
  if (tcp_producer != nullptr) {
    (void)co_await tcp_producer->Flush();
  } else {
    (void)co_await rdma_producer->Flush();
  }

  // Merge stats into the shared run result.
  const Histogram& src = tcp_producer != nullptr
                             ? tcp_producer->latencies()
                             : rdma_producer->latencies();
  run->result.latency.Merge(src);
  run->result.records += tcp_producer != nullptr
                             ? tcp_producer->acked_records()
                             : rdma_producer->acked_records();
  run->result.errors += tcp_producer != nullptr ? tcp_producer->errors()
                                                : rdma_producer->errors();
  run->result.elapsed_ns = cluster->sim().Now() - run->started_at;
  run->done++;
}

}  // namespace

WorkloadResult RunProduceWorkload(TestCluster& cluster, SystemKind kind,
                                  const ProduceOptions& options) {
  std::string topic = options.topic + "-" + std::to_string(NextTopicId());
  KD_CHECK_OK(cluster.CreateTopic(topic, options.partitions,
                                  options.replication_factor));
  ProduceRun run;
  run.go = std::make_unique<sim::Event>(cluster.sim());
  for (int i = 0; i < options.producers; i++) {
    sim::Spawn(cluster.sim(),
               OneProducer(&cluster, kind, options, topic, i, &run));
  }
  cluster.RunUntilCount(&run.done, options.producers);
  WorkloadResult result = std::move(run.result);
  double payload = static_cast<double>(options.record_size) *
                   static_cast<double>(result.records);
  if (result.elapsed_ns > 0) {
    result.mib_per_sec = RateMiBps(payload,
                                   static_cast<double>(result.elapsed_ns));
  }
  return result;
}

namespace {

sim::Co<void> PreloadTopic(TestCluster* cluster, std::string topic,
                           int records, size_t size, bool* done) {
  kafka::TopicPartitionId tp{topic, 0};
  net::NodeId node = cluster->AddClientNode("preloader");
  kafka::TcpProducer producer(
      cluster->sim(), cluster->tcp(), node,
      kafka::ProducerConfig{.acks = -1, .max_inflight = 32});
  KD_CHECK_OK(co_await producer.Connect(cluster->Leader(tp)->node()));
  std::string value(size, 'p');
  for (int i = 0; i < records; i++) {
    KD_CHECK_OK(co_await producer.ProduceAsync(tp, Slice("k", 1),
                                               Slice(value)));
  }
  KD_CHECK_OK(co_await producer.Flush());
  producer.Close();
  *done = true;
}

sim::Co<void> ConsumeAll(TestCluster* cluster, SystemKind kind,
                         ConsumeOptions options, std::string topic,
                         WorkloadResult* result, bool* done) {
  kafka::TopicPartitionId tp{topic, 0};
  net::NodeId node = cluster->AddClientNode("consumer");
  uint64_t consumed = 0;
  sim::TimeNs start = 0;
  if (kind == SystemKind::kKafka || kind == SystemKind::kOsuKafka) {
    kafka::TcpConsumer consumer(cluster->sim(), cluster->tcp(), node);
    if (kind == SystemKind::kKafka) {
      KD_CHECK_OK(co_await consumer.Connect(cluster->Leader(tp)->node()));
    } else {
      auto chan = co_await osu::OsuConnect(
          cluster->sim(), cluster->fabric(), cluster->ClientRnic(node),
          cluster->Leader(tp), cluster->OsuListenerOf(tp));
      KD_CHECK(chan.ok());
      consumer.ConnectWith(chan.value());
    }
    uint32_t max_bytes = static_cast<uint32_t>(
        options.records_per_poll * (options.record_size + 128));
    start = cluster->sim().Now();
    while (consumed < static_cast<uint64_t>(options.preload_records)) {
      sim::TimeNs poll_start = cluster->sim().Now();
      auto records = co_await consumer.Poll(tp, max_bytes);
      KD_CHECK(records.ok()) << records.status().ToString();
      if (records.value().empty()) break;
      result->latency.Add(cluster->sim().Now() - poll_start);
      consumed += records.value().size();
    }
  } else {
    kd::RdmaConsumer consumer(
        cluster->sim(), cluster->fabric(), cluster->tcp(), node,
        kd::RdmaConsumerConfig{.ring_consume = options.ring_consume});
    KD_CHECK_OK(co_await consumer.Connect(cluster->Leader(tp)));
    KD_CHECK_OK(co_await consumer.Subscribe(tp, 0));
    start = cluster->sim().Now();
    int empty_streak = 0;
    while (consumed < static_cast<uint64_t>(options.preload_records) &&
           empty_streak < 3) {
      sim::TimeNs poll_start = cluster->sim().Now();
      auto records = co_await consumer.Poll(tp);
      KD_CHECK(records.ok()) << records.status().ToString();
      if (records.value().empty()) {
        empty_streak++;
        continue;
      }
      empty_streak = 0;
      result->latency.Add(cluster->sim().Now() - poll_start);
      consumed += records.value().size();
    }
  }
  result->records = consumed;
  result->elapsed_ns = cluster->sim().Now() - start;
  *done = true;
}

}  // namespace

WorkloadResult RunConsumeWorkload(TestCluster& cluster, SystemKind kind,
                                  const ConsumeOptions& options) {
  std::string topic = options.topic + "-" + std::to_string(NextTopicId());
  KD_CHECK_OK(cluster.CreateTopic(topic, 1, options.replication_factor));
  bool loaded = false;
  sim::Spawn(cluster.sim(),
             PreloadTopic(&cluster, topic, options.preload_records,
                          options.record_size, &loaded));
  cluster.RunToFlag(&loaded);

  WorkloadResult result;
  bool done = false;
  sim::Spawn(cluster.sim(),
             ConsumeAll(&cluster, kind, options, topic, &result, &done));
  cluster.RunToFlag(&done);
  double payload = static_cast<double>(options.record_size) *
                   static_cast<double>(result.records);
  if (result.elapsed_ns > 0) {
    result.mib_per_sec =
        RateMiBps(payload, static_cast<double>(result.elapsed_ns));
  }
  return result;
}

namespace {

/// Drains `topic` until `total` records have been delivered, feeding the
/// per-record delivery delay (consume time - produce timestamp) into the
/// shared result. The per-tenant split lands in obs().slo via the consumer
/// internals themselves.
sim::Co<void> EndToEndConsumer(TestCluster* cluster, SystemKind kind,
                               std::string topic, int total,
                               WorkloadResult* result, int* consumed) {
  kafka::TopicPartitionId tp{topic, 0};
  net::NodeId node = cluster->AddClientNode("slo-consumer");
  sim::TimeNs start = cluster->sim().Now();
  auto account = [&](const std::vector<kafka::OwnedRecord>& records) {
    sim::TimeNs now = cluster->sim().Now();
    for (const kafka::OwnedRecord& r : records) {
      result->latency.Add(now - r.timestamp);
    }
    *consumed += static_cast<int>(records.size());
    result->records += records.size();
  };
  if (kind == SystemKind::kKafka || kind == SystemKind::kOsuKafka) {
    kafka::TcpConsumer consumer(cluster->sim(), cluster->tcp(), node);
    if (kind == SystemKind::kKafka) {
      KD_CHECK_OK(co_await consumer.Connect(cluster->Leader(tp)->node()));
    } else {
      auto chan = co_await osu::OsuConnect(
          cluster->sim(), cluster->fabric(), cluster->ClientRnic(node),
          cluster->Leader(tp), cluster->OsuListenerOf(tp));
      KD_CHECK(chan.ok()) << chan.status().ToString();
      consumer.ConnectWith(chan.value());
    }
    while (*consumed < total) {
      auto records = co_await consumer.Poll(tp, 1 << 20);
      KD_CHECK(records.ok()) << records.status().ToString();
      account(records.value());
    }
  } else {
    kd::RdmaConsumer consumer(cluster->sim(), cluster->fabric(),
                              cluster->tcp(), node);
    KD_CHECK_OK(co_await consumer.Connect(cluster->Leader(tp)));
    KD_CHECK_OK(co_await consumer.Subscribe(tp, 0));
    while (*consumed < total) {
      auto records = co_await consumer.Poll(tp);
      KD_CHECK(records.ok()) << records.status().ToString();
      account(records.value());
    }
  }
  result->elapsed_ns = cluster->sim().Now() - start;
}

}  // namespace

WorkloadResult RunEndToEndWorkload(TestCluster& cluster, SystemKind kind,
                                   const EndToEndOptions& options) {
  std::string topic = options.topic + "-" + std::to_string(NextTopicId());
  KD_CHECK_OK(cluster.CreateTopic(topic, 1, options.replication_factor));

  ProduceOptions produce;
  produce.partitions = 1;
  produce.producers = options.producers;
  produce.records_per_producer = options.records_per_producer;
  produce.record_size = options.record_size;
  produce.max_inflight = options.max_inflight;
  produce.replication_factor = options.replication_factor;

  ProduceRun run;
  run.go = std::make_unique<sim::Event>(cluster.sim());
  for (int i = 0; i < options.producers; i++) {
    sim::Spawn(cluster.sim(),
               OneProducer(&cluster, kind, produce, topic, i, &run));
  }
  WorkloadResult result;
  int consumed = 0;
  const int total = options.producers * options.records_per_producer;
  sim::Spawn(cluster.sim(),
             EndToEndConsumer(&cluster, kind, topic, total, &result,
                              &consumed));
  // Wait for the consumer AND every producer (acks may land just after the
  // last delivery) so no coroutine is torn down mid-flight.
  cluster.engine().RunUntilDone(
      [&] { return consumed >= total && run.done == options.producers; },
      cluster.engine().Now() + Seconds(3600));
  KD_CHECK(consumed >= total && run.done == options.producers)
      << "end-to-end workload did not finish: consumed=" << consumed << "/"
      << total << " producers=" << run.done << "/" << options.producers;
  result.errors = run.result.errors;
  double payload = static_cast<double>(options.record_size) *
                   static_cast<double>(result.records);
  if (result.elapsed_ns > 0) {
    result.mib_per_sec =
        RateMiBps(payload, static_cast<double>(result.elapsed_ns));
  }
  return result;
}

namespace {

sim::Co<void> EmptyFetchClient(TestCluster* cluster, SystemKind kind,
                               std::string topic, int iterations,
                               sim::TimeNs until, Histogram* latency,
                               uint64_t* polls, int* done) {
  kafka::TopicPartitionId tp{topic, 0};
  net::NodeId node = cluster->AddClientNode("poller");
  if (kind == SystemKind::kKafka || kind == SystemKind::kOsuKafka) {
    kafka::TcpConsumer consumer(cluster->sim(), cluster->tcp(), node);
    KD_CHECK_OK(co_await consumer.Connect(cluster->Leader(tp)->node()));
    // Position at the log end so every fetch is empty.
    consumer.Seek(cluster->Leader(tp)->GetPartition(tp)->log.log_end_offset());
    for (int i = 0; iterations == 0 || i < iterations; i++) {
      if (until != 0 && cluster->sim().Now() >= until) break;
      sim::TimeNs start = cluster->sim().Now();
      auto records = co_await consumer.Poll(tp);
      KD_CHECK(records.ok() && records.value().empty());
      if (latency != nullptr) {
        latency->Add(cluster->sim().Now() - start);
      }
      if (polls != nullptr) (*polls)++;
    }
  } else {
    kd::RdmaConsumer consumer(cluster->sim(), cluster->fabric(),
                              cluster->tcp(), node);
    KD_CHECK_OK(co_await consumer.Connect(cluster->Leader(tp)));
    KD_CHECK_OK(co_await consumer.Subscribe(
        tp, cluster->Leader(tp)->GetPartition(tp)->log.log_end_offset()));
    for (int i = 0; iterations == 0 || i < iterations; i++) {
      if (until != 0 && cluster->sim().Now() >= until) break;
      sim::TimeNs start = cluster->sim().Now();
      auto records = co_await consumer.Poll(tp);
      KD_CHECK(records.ok() && records.value().empty());
      if (latency != nullptr) {
        latency->Add(cluster->sim().Now() - start);
      }
      if (polls != nullptr) (*polls)++;
    }
  }
  (*done)++;
}

}  // namespace

WorkloadResult RunEmptyFetchLatency(TestCluster& cluster, SystemKind kind,
                                    int iterations) {
  std::string topic = "empty-" + std::to_string(NextTopicId());
  KD_CHECK_OK(cluster.CreateTopic(topic, 1, 1));
  WorkloadResult result;
  int done = 0;
  uint64_t polls = 0;
  sim::Spawn(cluster.sim(),
             EmptyFetchClient(&cluster, kind, topic, iterations, 0,
                              &result.latency, &polls, &done));
  cluster.RunUntilCount(&done, 1);
  result.records = polls;
  return result;
}

double RunEmptyFetchThroughput(TestCluster& cluster, SystemKind kind,
                               int clients, sim::TimeNs duration) {
  std::string topic = "flood-" + std::to_string(NextTopicId());
  KD_CHECK_OK(cluster.CreateTopic(topic, 1, 1));
  int done = 0;
  uint64_t polls = 0;
  sim::TimeNs until = cluster.sim().Now() + duration;
  for (int c = 0; c < clients; c++) {
    sim::Spawn(cluster.sim(),
               EmptyFetchClient(&cluster, kind, topic, 0, until, nullptr,
                                &polls, &done));
  }
  cluster.RunUntilCount(&done, clients, duration * 4 + Seconds(60));
  return static_cast<double>(polls) /
         (static_cast<double>(duration) / 1e9);
}

// ---------------------------------------------------------------------------
// Table output
// ---------------------------------------------------------------------------

namespace {
void PrintCells(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); i++) {
    std::printf("%-14s", cells[i].c_str());
  }
  std::printf("\n");
}
}  // namespace

void PrintFigureHeader(const std::string& figure, const std::string& title,
                       const std::vector<std::string>& columns) {
  std::printf("\n== %s: %s ==\n", figure.c_str(), title.c_str());
  PrintCells(columns);
  for (size_t i = 0; i < columns.size(); i++) std::printf("%-14s", "------");
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) { PrintCells(cells); }

std::string Cell(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::vector<size_t> PaperRecordSizes(size_t lo, size_t hi) {
  std::vector<size_t> sizes;
  for (size_t s = lo; s <= hi; s *= 2) sizes.push_back(s);
  return sizes;
}

}  // namespace harness
}  // namespace kafkadirect

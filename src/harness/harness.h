// Benchmark/example harness: one-call deployment of a simulated cluster and
// reusable workload drivers for the three systems the paper compares —
// unmodified Kafka (TCP), OSU Kafka (two-sided RDMA), and KafkaDirect
// (one-sided RDMA, exclusive or shared produce).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "direct/kd_broker.h"
#include "direct/rdma_consumer.h"
#include "direct/rdma_producer.h"
#include "kafka/cluster.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "osu/osu_transport.h"
#include "sim/sharded.h"

namespace kafkadirect {
namespace harness {

/// Which system a workload runs against (the lines in the paper's plots).
enum class SystemKind {
  kKafka,        // unmodified Kafka over (simulated) kernel TCP / IPoIB
  kOsuKafka,     // Kafka protocol over two-sided RDMA Send/Recv
  kKdExclusive,  // KafkaDirect, exclusive RDMA produce
  kKdShared,     // KafkaDirect, shared (FAA) RDMA produce
};

const char* SystemName(SystemKind kind);

struct DeploymentConfig {
  int num_brokers = 1;
  kafka::BrokerConfig broker;
  /// Extra latitude for deterministic runs.
  uint64_t seed = 1;
  /// Record spans even without --trace_json (used by tests; the tracer
  /// must be enabled before brokers/QPs are created so tracks exist).
  bool enable_tracing = false;
  /// Shard count for the embedded simulation engine; 0 = take the
  /// --sim_shards command-line flag (default 1). The harness always runs
  /// its engine in deterministic (merged) mode so workload predicates
  /// evaluate at well-defined points; parallel execution is exercised by
  /// the engine benches and tests (bench/simcore_gbench.cc).
  int sim_shards = 0;
};

/// Observability outputs requested on the command line. When `trace_json`
/// is set, every TestCluster constructed afterwards records spans; on
/// cluster teardown the files are (over)written, so after a bench the
/// files hold the last deployment's metrics/trace/SLO report/flight dump.
struct ObsOptions {
  std::string metrics_json;  // --metrics_json=<path>
  std::string trace_json;    // --trace_json=<path>
  std::string slo_json;      // --slo_json=<path>: per-tenant SLO report
  std::string flight_dump;   // --flight_dump=<path>: flight-recorder trace
  /// --monitor_period=<ns>: tick the live invariant monitor at this
  /// virtual-time period (0 = monitor only checked at teardown when
  /// --strict is set, otherwise off).
  sim::TimeNs monitor_period_ns = 0;
  /// --strict: an invariant violation aborts the process (after dumping
  /// the flight recorder).
  bool strict = false;
};

/// Simulation-engine knobs from the command line (DESIGN.md §11).
struct SimEngineOptions {
  int threads = 1;  // --sim_threads=<n>: worker threads for parallel mode
  int shards = 1;   // --sim_shards=<n>: event-queue domains
};

/// Parses --metrics_json= / --trace_json= / --slo_json= / --flight_dump= /
/// --monitor_period= / --strict / --sim_threads= / --sim_shards= into the
/// process-wide options. Unrecognized arguments are ignored (benches keep
/// their own flags).
void InitObsFromArgs(int argc, char** argv);
const ObsOptions& obs_options();
const SimEngineOptions& sim_engine_options();

/// A fully wired simulated deployment: fabric + TCP stack + brokers (all
/// KafkaDirectBroker so every datapath is available) + an OSU listener per
/// broker.
class TestCluster {
 public:
  explicit TestCluster(DeploymentConfig config);
  ~TestCluster();

  Status CreateTopic(const std::string& topic, int partitions, int rf) {
    return cluster_->CreateTopic(topic, partitions, rf);
  }

  kd::KafkaDirectBroker* Leader(const kafka::TopicPartitionId& tp) {
    return static_cast<kd::KafkaDirectBroker*>(cluster_->LeaderOf(tp));
  }
  kd::KafkaDirectBroker* Broker(int id) {
    return static_cast<kd::KafkaDirectBroker*>(cluster_->broker(id));
  }
  osu::OsuListener* OsuListenerOf(const kafka::TopicPartitionId& tp) {
    return osu_listeners_[Leader(tp)->id()].get();
  }

  /// Fabric node + RNIC for one more client machine.
  net::NodeId AddClientNode(const std::string& name);
  rdma::Rnic& ClientRnic(net::NodeId node);

  /// Runs the simulation until `*flag` (bounded by `deadline`).
  void RunToFlag(const bool* flag, sim::TimeNs deadline = Seconds(3600));
  void RunUntilCount(const int* counter, int target,
                     sim::TimeNs deadline = Seconds(3600));

  /// The default event-queue domain (shard 0) — the simulator every
  /// deployment entity schedules on, exactly as before the engine existed.
  sim::Simulator& sim() { return engine_.shard(0); }
  /// The sharded engine driving the deployment (deterministic mode).
  sim::ShardedSimulator& engine() { return engine_; }
  CostModel& cost() { return cost_; }  // mutate BEFORE constructing clients
  net::Fabric& fabric() { return *fabric_; }
  tcpnet::Network& tcp() { return *tcpnet_; }
  kafka::Cluster& cluster() { return *cluster_; }

 private:
  DeploymentConfig config_;
  sim::ShardedSimulator engine_;
  CostModel cost_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<tcpnet::Network> tcpnet_;
  std::unique_ptr<kafka::Cluster> cluster_;
  std::vector<std::shared_ptr<osu::OsuListener>> osu_listeners_;
  std::map<net::NodeId, std::unique_ptr<rdma::Rnic>> client_rnics_;
};

// ---------------------------------------------------------------------------
// Produce workloads (Figs. 10-17)
// ---------------------------------------------------------------------------

struct ProduceOptions {
  std::string topic = "bench";
  int partitions = 1;
  int producers = 1;          // one client per producer
  int records_per_producer = 200;
  size_t record_size = 1024;
  int max_inflight = 1;       // 1 = latency mode (sync round trips)
  int16_t acks = -1;
  int replication_factor = 1;
  /// Datapath-protocol knobs for the RDMA producers (DESIGN.md §12);
  /// defaults reproduce the paper's schedule exactly. Ignored by the
  /// TCP/OSU systems.
  int signal_interval = 1;
  kd::NotifyMode notify_mode = kd::NotifyMode::kWriteImm;
  uint32_t notify_crossover_bytes = 4096;
};

struct WorkloadResult {
  Histogram latency;          // per-request client-observed round trips (ns)
  double mib_per_sec = 0.0;   // payload goodput
  uint64_t records = 0;
  uint64_t errors = 0;
  sim::TimeNs elapsed_ns = 0;

  double LatencyUsMedian() const { return latency.Median() / 1000.0; }
};

/// Creates the topic, runs the produce workload for `kind`, and returns the
/// measured latency distribution and goodput. Producer i targets partition
/// i % partitions.
WorkloadResult RunProduceWorkload(TestCluster& cluster, SystemKind kind,
                                  const ProduceOptions& options);

// ---------------------------------------------------------------------------
// Consume workloads (Figs. 18-20 and the empty-fetch table)
// ---------------------------------------------------------------------------

struct ConsumeOptions {
  std::string topic = "bench";
  int replication_factor = 1;
  int preload_records = 2000;
  size_t record_size = 1024;
  /// Fetch at most this many records per poll (1 reproduces the paper's
  /// "broker replies with one record for each fetch request").
  int records_per_poll = 1;
  /// Ring-buffer consume protocol (DESIGN.md §12) for the RDMA consumer;
  /// requires the deployment to enable broker.rdma_ring_consume. Ignored
  /// by the TCP/OSU systems.
  bool ring_consume = false;
};

/// Preloads the topic (via the RDMA produce path for speed) and measures
/// record-at-a-time consumption for `kind` (kKdExclusive/kKdShared both map
/// to the RDMA consumer).
WorkloadResult RunConsumeWorkload(TestCluster& cluster, SystemKind kind,
                                  const ConsumeOptions& options);

/// Latency of checking for new records when none exist: a TCP empty fetch
/// vs a single RDMA metadata-slot read (§5.3).
WorkloadResult RunEmptyFetchLatency(TestCluster& cluster, SystemKind kind,
                                    int iterations = 200);

/// How many empty fetch checks per second one broker sustains when flooded
/// by `clients` consumers (§5.3's 53 K/s vs 8300 K/s table).
double RunEmptyFetchThroughput(TestCluster& cluster, SystemKind kind,
                               int clients, sim::TimeNs duration);

// ---------------------------------------------------------------------------
// End-to-end multi-tenant workload (SLO audit)
// ---------------------------------------------------------------------------

struct EndToEndOptions {
  std::string topic = "slo";
  /// One producer per tenant; tenant id = producer index + 1 (0 is the
  /// untagged/preload id), stamped into every batch as producer_id.
  int producers = 4;
  int records_per_producer = 100;
  size_t record_size = 1024;
  int max_inflight = 4;
  int replication_factor = 1;
};

/// Concurrent produce + consume on one partition: `producers` tenants
/// produce while a single consumer drains until it has seen every record.
/// Delivery delays land in the cluster's obs().slo tracker per tenant
/// (reported via --slo_json). The returned latency histogram holds the
/// consumer-observed delivery delays across all tenants.
WorkloadResult RunEndToEndWorkload(TestCluster& cluster, SystemKind kind,
                                   const EndToEndOptions& options);

// ---------------------------------------------------------------------------
// Table output
// ---------------------------------------------------------------------------

/// Prints "== Figure N: title ==" plus an aligned header row.
void PrintFigureHeader(const std::string& figure, const std::string& title,
                       const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string Cell(double v, int precision = 1);

/// The record-size sweep most figures share (axis labels match the paper).
std::vector<size_t> PaperRecordSizes(size_t lo, size_t hi);

}  // namespace harness
}  // namespace kafkadirect

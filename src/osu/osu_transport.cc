#include "osu/osu_transport.h"

#include <cstring>

#include "sim/awaitable.h"

namespace kafkadirect {
namespace osu {

namespace {
constexpr uint32_t kFragHeader = 8;  // {u32 frame_total, u32 frag_len}
}

OsuChannel::OsuChannel(sim::Simulator& sim, net::Fabric& fabric,
                       std::shared_ptr<rdma::QueuePair> qp,
                       std::shared_ptr<rdma::CompletionQueue> send_cq,
                       std::shared_ptr<rdma::CompletionQueue> recv_cq,
                       net::NodeId peer, OsuConfig config)
    : sim_(sim), fabric_(fabric), qp_(std::move(qp)),
      send_cq_(std::move(send_cq)), recv_cq_(std::move(recv_cq)),
      peer_(peer), config_(config), rx_(sim) {}

void OsuChannel::Start() {
  for (int i = 0; i < config_.recv_depth; i++) {
    recv_bufs_.emplace_back(config_.buffer_size + kFragHeader);
    KD_CHECK_OK(qp_->PostRecv(
        i, recv_bufs_.back().data(),
        static_cast<uint32_t>(recv_bufs_.back().size())));
  }
  sim::Spawn(sim_, RecvPump(alive_, recv_cq_));
}

void OsuChannel::Close() {
  if (closed_) return;
  closed_ = true;
  *alive_ = false;
  rx_.Close();
  qp_->Disconnect();
}

sim::Co<Status> OsuChannel::Send(std::vector<uint8_t> msg, bool zero_copy) {
  if (closed_) co_return Status::Disconnected("OSU channel closed");
  const CostModel& cm = fabric_.cost();
  uint32_t total = static_cast<uint32_t>(msg.size());
  uint64_t offset = 0;
  do {
    uint32_t frag = static_cast<uint32_t>(
        std::min<uint64_t>(config_.buffer_size, msg.size() - offset));
    // Copy the frame into a registered network send buffer — the copy the
    // paper's zero-copy design exists to remove.
    if (!zero_copy) {
      co_await sim::Delay(
          sim_, static_cast<sim::TimeNs>(cm.kafka.copy_ns_per_byte * frag));
    }
    send_bufs_.emplace_back(kFragHeader + frag);
    std::vector<uint8_t>& buf = send_bufs_.back();
    EncodeFixed32(buf.data(), total);
    EncodeFixed32(buf.data() + 4, frag);
    std::memcpy(buf.data() + kFragHeader, msg.data() + offset, frag);
    rdma::WorkRequest wr;
    wr.opcode = rdma::Opcode::kSend;
    wr.signaled = true;
    wr.local_addr = buf.data();
    wr.length = static_cast<uint32_t>(buf.size());
    while (true) {
      Status st = qp_->PostSend(wr);
      if (st.ok()) break;
      if (st.IsDisconnected()) co_return st;
      co_await sim::Delay(sim_, 2000);  // send queue full; retry
    }
    offset += frag;
  } while (offset < msg.size());
  co_return Status::OK();
}

sim::Co<void> OsuChannel::RecvPump(std::shared_ptr<bool> alive,
                                   std::shared_ptr<rdma::CompletionQueue> cq) {
  while (*alive) {
    auto wc = co_await cq->Next();
    if (!*alive || !wc.has_value()) co_return;
    if (!wc->ok()) {
      rx_.Close();
      co_return;
    }
    if (wc->opcode == rdma::Opcode::kSend) {
      // Send buffer transmitted; release it.
      if (!send_bufs_.empty()) send_bufs_.pop_front();
      continue;
    }
    if (wc->opcode != rdma::Opcode::kRecv) continue;
    const std::vector<uint8_t>& buf = recv_bufs_[wc->wr_id];
    uint32_t total = DecodeFixed32(buf.data());
    uint32_t frag = DecodeFixed32(buf.data() + 4);
    // Copy out of the network receive buffer (the second OSU copy).
    co_await sim::Delay(
        sim_, static_cast<sim::TimeNs>(
                  fabric_.cost().kafka.copy_ns_per_byte * frag));
    if (reassembly_.empty()) expected_total_ = total;
    reassembly_.insert(reassembly_.end(), buf.data() + kFragHeader,
                       buf.data() + kFragHeader + frag);
    (void)qp_->PostRecv(wc->wr_id, recv_bufs_[wc->wr_id].data(),
                        static_cast<uint32_t>(recv_bufs_[wc->wr_id].size()));
    if (reassembly_.size() >= expected_total_) {
      rx_.Push(std::move(reassembly_));
      reassembly_.clear();
      expected_total_ = 0;
    }
  }
}

sim::Co<StatusOr<std::vector<uint8_t>>> OsuChannel::Recv() {
  bool had = !rx_.empty();
  auto item = co_await rx_.Pop();
  if (!item.has_value()) {
    co_return Status::Disconnected("OSU channel closed");
  }
  if (!had) {
    // OSU Kafka keeps Kafka's blocking network threads.
    co_await sim::Delay(sim_, fabric_.cost().cpu.wakeup_ns);
  }
  co_return std::move(*item);
}

sim::Co<StatusOr<net::MessageStreamPtr>> OsuConnect(
    sim::Simulator& sim, net::Fabric& fabric, rdma::Rnic& client_rnic,
    kd::KafkaDirectBroker* broker, OsuListener* listener, OsuConfig config) {
  // Connection establishment round trips.
  co_await sim::Delay(sim, 2 * fabric.cost().link.propagation_ns + 30000);
  auto client_cq = client_rnic.CreateCq();
  auto client_qp = client_rnic.CreateQp(client_cq, client_cq);
  auto broker_cq = broker->rnic().CreateCq();
  auto broker_qp = broker->rnic().CreateQp(broker_cq, broker_cq);
  KD_CO_RETURN_IF_ERROR(rdma::Connect(client_qp, broker_qp));
  auto client_side = std::make_shared<OsuChannel>(
      sim, fabric, client_qp, client_cq, client_cq, broker->node(), config);
  auto broker_side = std::make_shared<OsuChannel>(
      sim, fabric, broker_qp, broker_cq, broker_cq, client_rnic.node(),
      config);
  client_side->Start();
  broker_side->Start();
  listener->Deliver(broker_side);
  co_return net::MessageStreamPtr(client_side);
}

}  // namespace osu
}  // namespace kafkadirect

// OSU-Kafka transport: the comparison system from the paper (§4, §5).
//
// "OSU Kafka uses two-sided RDMA Sends to replace the TCP/IP network module
// of Kafka and does not use one-sided RDMA requests to directly access
// records. Thus, its performance is still obstructed by the need to copy
// messages from and to network buffers of the multipurpose request
// processing module."
//
// Implemented as a MessageStream over verbs Send/Recv with registered
// bounce buffers: the sender copies each frame into a registered send
// buffer; the receiver copies it out of the posted receive buffer. The
// unmodified broker/client request path then runs on top — exactly the
// design point the paper measures.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "direct/kd_broker.h"
#include "net/message_stream.h"
#include "rdma/queue_pair.h"
#include "sim/channel.h"

namespace kafkadirect {
namespace osu {

struct OsuConfig {
  /// Size of each registered bounce buffer; frames larger than this are
  /// fragmented.
  uint32_t buffer_size = 1u << 20;
  /// Pre-posted receives per connection.
  int recv_depth = 64;
};

/// One endpoint of an OSU-style two-sided RDMA channel.
class OsuChannel : public net::MessageStream,
                   public std::enable_shared_from_this<OsuChannel> {
 public:
  OsuChannel(sim::Simulator& sim, net::Fabric& fabric,
             std::shared_ptr<rdma::QueuePair> qp,
             std::shared_ptr<rdma::CompletionQueue> send_cq,
             std::shared_ptr<rdma::CompletionQueue> recv_cq,
             net::NodeId peer, OsuConfig config);

  /// Posts receive buffers and starts the receive pump; call once both
  /// sides are connected.
  void Start();

  sim::Co<Status> Send(std::vector<uint8_t> msg, bool zero_copy) override;
  sim::Co<StatusOr<std::vector<uint8_t>>> Recv() override;
  void Close() override;
  bool closed() const override { return closed_; }
  net::NodeId peer_node() const override { return peer_; }

 private:
  struct Frag {
    uint32_t total = 0;  // total frame size; fragments reassembled in order
    std::vector<uint8_t> data;
  };

  sim::Co<void> RecvPump(std::shared_ptr<bool> alive,
                         std::shared_ptr<rdma::CompletionQueue> cq);

  sim::Simulator& sim_;
  net::Fabric& fabric_;
  std::shared_ptr<rdma::QueuePair> qp_;
  std::shared_ptr<rdma::CompletionQueue> send_cq_;
  std::shared_ptr<rdma::CompletionQueue> recv_cq_;
  net::NodeId peer_;
  OsuConfig config_;
  std::vector<std::vector<uint8_t>> recv_bufs_;
  std::deque<std::vector<uint8_t>> send_bufs_;  // retained until completion
  sim::Channel<std::vector<uint8_t>> rx_;
  std::vector<uint8_t> reassembly_;
  uint64_t expected_total_ = 0;
  bool closed_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Listener side: brokers serve OSU connections alongside TCP.
class OsuListener : public net::StreamListener {
 public:
  explicit OsuListener(sim::Simulator& sim) : pending_(sim) {}

  sim::Co<StatusOr<net::MessageStreamPtr>> Accept() override {
    auto item = co_await pending_.Pop();
    if (!item.has_value()) {
      co_return Status::Disconnected("OSU listener shut down");
    }
    co_return std::move(*item);
  }
  void Shutdown() override { pending_.Close(); }

  void Deliver(net::MessageStreamPtr stream) {
    pending_.Push(std::move(stream));
  }

 private:
  sim::Channel<net::MessageStreamPtr> pending_;
};

/// Establishes an OSU channel between a client RNIC and a broker that
/// serves `listener`. Stands in for OSU Kafka's connection setup.
sim::Co<StatusOr<net::MessageStreamPtr>> OsuConnect(
    sim::Simulator& sim, net::Fabric& fabric, rdma::Rnic& client_rnic,
    kd::KafkaDirectBroker* broker, OsuListener* listener,
    OsuConfig config = {});

}  // namespace osu
}  // namespace kafkadirect

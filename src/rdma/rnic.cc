#include "rdma/rnic.h"

#include <algorithm>

#include "rdma/completion_queue.h"
#include "rdma/queue_pair.h"
#include "rdma/srq.h"

namespace kafkadirect {
namespace rdma {

StatusOr<MemoryRegionPtr> Rnic::RegisterMemory(uint8_t* base, uint64_t len,
                                               uint32_t access) {
  if (base == nullptr || len == 0) {
    return Status::InvalidArgument("RegisterMemory: empty region");
  }
  uint32_t rkey = next_rkey_++;
  auto mr = std::make_shared<MemoryRegion>(rkey, base, len, access);
  mrs_[rkey] = mr;
  registered_bytes_ += len;
  peak_registered_bytes_ = std::max(peak_registered_bytes_,
                                    registered_bytes_);
  return mr;
}

Status Rnic::DeregisterMemory(const MemoryRegionPtr& mr) {
  auto it = mrs_.find(mr->rkey());
  if (it == mrs_.end()) {
    return Status::NotFound("DeregisterMemory: unknown rkey");
  }
  it->second->Invalidate();
  registered_bytes_ -= it->second->length();
  mrs_.erase(it);
  return Status::OK();
}

MemoryRegion* Rnic::LookupMr(uint32_t rkey) {
  auto it = mrs_.find(rkey);
  if (it == mrs_.end()) return nullptr;
  return it->second.get();
}

std::shared_ptr<CompletionQueue> Rnic::CreateCq(int capacity) {
  if (capacity <= 0) capacity = fabric_.cost().rdma.default_cq_capacity;
  auto cq = std::make_shared<CompletionQueue>(sim_, capacity);
  // All CQs feed one process-wide depth gauge; its high-water mark is the
  // worst polling backlog any CQ saw.
  cq->set_depth_gauge(
      fabric_.obs().metrics.GetGauge("kd.rdma.cq.depth"));
  cq->set_poll_batch_hist(
      fabric_.obs().metrics.GetHistogram("kd.rdma.cq.poll_batch"));
  return cq;
}

std::shared_ptr<QueuePair> Rnic::CreateQp(
    std::shared_ptr<CompletionQueue> send_cq,
    std::shared_ptr<CompletionQueue> recv_cq) {
  return std::make_shared<QueuePair>(this, std::move(send_cq),
                                     std::move(recv_cq));
}

std::shared_ptr<QueuePair> Rnic::CreateQp(
    std::shared_ptr<CompletionQueue> send_cq,
    std::shared_ptr<CompletionQueue> recv_cq,
    std::shared_ptr<SharedReceiveQueue> srq) {
  return std::make_shared<QueuePair>(this, std::move(send_cq),
                                     std::move(recv_cq), std::move(srq));
}

std::shared_ptr<SharedReceiveQueue> Rnic::CreateSrq(int max_wr) {
  if (max_wr <= 0) max_wr = fabric_.cost().rdma.max_srq_wr;
  return std::make_shared<SharedReceiveQueue>(sim_, max_wr,
                                              fabric_.obs().metrics);
}

}  // namespace rdma
}  // namespace kafkadirect

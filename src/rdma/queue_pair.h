// QueuePair: a reliably-connected (RC) queue pair.
//
// Semantics reproduced from the InfiniBand RC transport, because the
// paper's protocols depend on them:
//  - work requests execute in post order; deliveries and completions are
//    in order per QP (KafkaDirect's exclusive-produce correctness, §4.2.2);
//  - one-sided Write/Read/atomics execute at the responder RNIC with no
//    responder CPU involvement;
//  - WriteWithImm consumes a posted receive and surfaces {byte_len, imm}
//    only — the receiver does not learn the destination address (§4.2.2);
//  - a Send with no posted receive (RNR) or a remote access violation tears
//    the connection down; both sides observe QP error and flushed WRs;
//  - atomics serialize on the responder RNIC's atomic unit (2.68 Mops/s).
#pragma once

#include <deque>
#include <memory>
#include <span>

#include "common/status.h"
#include "net/fabric.h"
#include "obs/observability.h"
#include "rdma/completion_queue.h"
#include "rdma/memory_region.h"
#include "rdma/srq.h"
#include "rdma/verbs.h"
#include "sim/channel.h"
#include "sim/task.h"

namespace kafkadirect {
namespace rdma {

class Rnic;

class QueuePair : public std::enable_shared_from_this<QueuePair> {
 public:
  enum class State { kInit, kConnected, kError };

  QueuePair(Rnic* rnic, std::shared_ptr<CompletionQueue> send_cq,
            std::shared_ptr<CompletionQueue> recv_cq,
            std::shared_ptr<SharedReceiveQueue> srq = nullptr);
  ~QueuePair();
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  /// Posts a send-queue work request. Fails if the QP is not connected or
  /// the send queue is full.
  Status PostSend(const WorkRequest& wr);

  /// Postlist variant (ibv_post_send with a `next`-chained WR list): the
  /// whole chain is validated up front and posted all-or-nothing — one
  /// doorbell for the chain head, `postlist_wqe_ns` per later WR.
  /// (Deviation from real verbs, which partially post and return bad_wr;
  /// all-or-nothing keeps simulation state simple. See DESIGN.md §10.)
  Status PostSend(std::span<const WorkRequest> wrs);

  /// Posts a receive buffer (required for incoming Send / WriteWithImm).
  /// `buf` may be null for immediate-only receives. Invalid on an
  /// SRQ-attached QP — post to the SRQ instead.
  Status PostRecv(uint64_t wr_id, uint8_t* buf, uint32_t len);

  /// Postlist variant of PostRecv; all-or-nothing.
  Status PostRecv(std::span<const RecvRequest> reqs);

  /// Tears the connection down; both sides transition to error and all
  /// outstanding work requests are flushed.
  void Disconnect();

  State state() const { return state_; }
  uint32_t qp_num() const { return qp_num_; }
  Rnic* rnic() const { return rnic_; }
  QueuePair* peer() const { return peer_; }
  CompletionQueue* send_cq() const { return send_cq_.get(); }
  CompletionQueue* recv_cq() const { return recv_cq_.get(); }

  /// Fires when the QP enters the error state (the broker uses this as the
  /// "client disconnected" signal for revoking RDMA access).
  sim::Event& error_event() { return error_event_; }

  size_t outstanding_sends() const { return outstanding_; }
  size_t posted_recvs() const { return recvs_.size(); }
  SharedReceiveQueue* srq() const { return srq_.get(); }

  /// Selective-signaling mode (DESIGN.md §12): when on, an unsignaled WR's
  /// send-queue slot is NOT reclaimed at completion time — it is freed
  /// lazily when the next CQE-generating (signaled or errored) completion
  /// lands, exactly like a real RNIC where the driver only learns about SQ
  /// progress from CQEs. Off (the default) keeps the historical behaviour:
  /// every completion frees its slot immediately, which is what a QP whose
  /// WRs are all unsignaled (e.g. broker ctrl sends) relies on. Callers
  /// that enable this MUST post a signaled WR at least every
  /// `max_send_wr / 2` posts or the SQ wedges (the classic hazard; see
  /// tests/rdma/selective_signaling_test.cc).
  void set_selective_signaling(bool on) { lazy_sq_reclaim_ = on; }
  bool selective_signaling() const { return lazy_sq_reclaim_; }

  /// Called by CompletionQueue on overflow.
  void FailFromCq();

 private:
  friend class Rnic;
  friend Status Connect(const std::shared_ptr<QueuePair>& a,
                        const std::shared_ptr<QueuePair>& b);

  struct Delivery {
    WorkRequest wr;
    std::shared_ptr<QueuePair> initiator;  // kept alive until executed
  };

  static sim::Co<void> SendEngine(std::shared_ptr<QueuePair> self);
  static sim::Co<void> ResponderWorker(std::shared_ptr<QueuePair> self);

  /// Executes one inbound operation at this (responder) QP.
  sim::Co<void> Execute(Delivery d);

  /// Pops the next receive buffer — from the SRQ when attached, the QP's
  /// own receive queue otherwise. False when drained.
  bool TakeRecv(RecvRequest* out);

  /// The drained-receive-pool failure path for an inbound Send /
  /// WriteWithImm (`rop` names the receive-side opcode). SRQ-attached QPs
  /// surface the error on the receiver's CQ; plain RQs tell only the
  /// initiator. Both tear the connection down.
  void FailRnr(const WorkRequest& wr, QueuePair* initiator, Opcode rop,
               sim::TimeNs prop);

  void Fail();

  /// Schedules the initiator-side CQE/bookkeeping for `wr` at time `when`.
  void CompleteInitiator(const WorkRequest& wr, WcStatus status,
                         sim::TimeNs when, uint32_t byte_len);

  /// Delivers a responder-side (receive) CQE at time `when`.
  void CompleteRecv(const WorkCompletion& wc, sim::TimeNs when);

  Rnic* rnic_;
  sim::Simulator& sim_;        // safe after the owning Rnic is gone
  const CostModel& cost_;      // fabric-owned, same lifetime guarantee:
                               // completion flushes may outlive the Rnic
  std::shared_ptr<CompletionQueue> send_cq_;  // QPs co-own their CQs so
  std::shared_ptr<CompletionQueue> recv_cq_;  // late completions are safe
  QueuePair* peer_ = nullptr;
  State state_ = State::kInit;
  uint32_t qp_num_;

  sim::Channel<WorkRequest> send_ch_;
  sim::Channel<Delivery> deliveries_;
  std::deque<RecvRequest> recvs_;
  std::shared_ptr<SharedReceiveQueue> srq_;  // nullptr = plain RQ
  sim::Event error_event_;

  size_t outstanding_ = 0;
  /// Selective signaling: lazy SQ-slot reclamation state. When
  /// `lazy_sq_reclaim_` is on, completed-but-unsignaled WRs park their slot
  /// here until the next CQE reclaims the whole run. A counter (not
  /// positional bookkeeping) because per-QP completion times are not
  /// monotone across op types; only the count of freeable slots matters.
  bool lazy_sq_reclaim_ = false;
  size_t sq_unreclaimed_ = 0;
  /// Responder response-channel ordering: responses (acks, read data,
  /// atomic results) leave in execution order.
  sim::TimeNs resp_chain_ = 0;

  /// Per-QP verbs counters (kd.rdma.qp.<num>.*) plus process-wide
  /// aggregates; registered once at construction, bumped in PostSend /
  /// PostRecv with no allocation.
  struct OpCounters {
    obs::Counter* send = nullptr;
    obs::Counter* write = nullptr;
    obs::Counter* read = nullptr;
    obs::Counter* atomic = nullptr;
    obs::Counter* recv = nullptr;
    obs::Counter* inline_sends = nullptr;
    obs::Counter* bytes = nullptr;
  };
  OpCounters qp_counters_;
  OpCounters agg_counters_;
  /// Process-wide datapath-protocol counters (DESIGN.md §12): the
  /// signaled/posted and CQE/doorbell ratios the ablation bench and the
  /// obs invariant tests read.
  struct SignalCounters {
    obs::Counter* wrs_posted = nullptr;    // every send-queue WR
    obs::Counter* wrs_signaled = nullptr;  // WRs posted with signaled=true
    obs::Counter* doorbells = nullptr;     // non-chained posts (MMIO rings)
    obs::Counter* cqes = nullptr;          // CQEs delivered (send+recv side)
    obs::Counter* rnr_events = nullptr;    // receiver-not-ready teardowns
  };
  SignalCounters sig_counters_;
  obs::LogLinearHistogram* postlist_hist_ = nullptr;
  obs::SpanTracer* tracer_;
  obs::TrackId trace_track_ = 0;
  // Flight recorder (always-on black box): every posted verb and RNR
  // teardown leaves a breadcrumb in the per-shard ring.
  obs::FlightRecorder* flight_ = nullptr;
  uint32_t flight_shard_ = 0;
};

/// Connects two INIT-state QPs into an RC connection and starts their
/// engines. (In-process stand-in for the usual out-of-band QP exchange.)
Status Connect(const std::shared_ptr<QueuePair>& a,
               const std::shared_ptr<QueuePair>& b);

}  // namespace rdma
}  // namespace kafkadirect

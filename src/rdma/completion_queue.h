// CompletionQueue: bounded CQE queue with verbs overflow semantics — if the
// application lets a CQ fill up, the CQ enters an error state and every QP
// bound to it is torn down. (This failure mode is why KafkaDirect's push
// replication needs credit-based flow control, §4.3.2.)
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "sim/awaitable.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "rdma/verbs.h"

namespace kafkadirect {
namespace rdma {

class QueuePair;

class CompletionQueue
    : public std::enable_shared_from_this<CompletionQueue> {
 public:
  CompletionQueue(sim::Simulator& sim, int capacity)
      : sim_(sim), capacity_(capacity), arrival_(sim) {}
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Non-blocking poll; nullopt when empty.
  std::optional<WorkCompletion> Poll() {
    if (cqes_.empty()) return std::nullopt;
    WorkCompletion wc = cqes_.front();
    cqes_.pop_front();
    return wc;
  }

  /// Non-blocking batch poll (ibv_poll_cq with num_entries > 1): drains up
  /// to `max_n` CQEs into `out`, preserving delivery order. Returns the
  /// number drained. Feeding one wakeup with a whole batch is what lets an
  /// event loop scale past one simulator event per completion.
  size_t PollBatch(WorkCompletion* out, size_t max_n) {
    size_t n = 0;
    while (n < max_n && !cqes_.empty()) {
      out[n++] = cqes_.front();
      cqes_.pop_front();
    }
    if (n > 0 && poll_batch_hist_ != nullptr) {
      poll_batch_hist_->Add(static_cast<int64_t>(n));
    }
    return n;
  }

  /// co_await cq.NextBatch(out, max_n) — blocks until at least one CQE is
  /// available, then drains up to `max_n` of them. Returns 0 only when the
  /// CQ is in the error state.
  sim::Co<size_t> NextBatch(WorkCompletion* out, size_t max_n) {
    auto self = shared_from_this();
    while (self->cqes_.empty() && !self->error_) {
      self->arrival_.Reset();
      co_await self->arrival_.Wait();
    }
    co_return self->PollBatch(out, max_n);
  }

  /// co_await cq.Next() — blocks until a CQE is available (or the CQ is in
  /// error state, in which case nullopt is returned). The CQ keeps itself
  /// alive while a waiter is suspended.
  sim::Co<std::optional<WorkCompletion>> Next() {
    auto self = shared_from_this();
    while (self->cqes_.empty() && !self->error_) {
      self->arrival_.Reset();
      co_await self->arrival_.Wait();
    }
    co_return self->Poll();
  }

  /// co_await cq.NextFor(timeout) — like Next() but gives up after
  /// `timeout` ns of virtual time.
  sim::Co<std::optional<WorkCompletion>> NextFor(sim::TimeNs timeout) {
    auto self = shared_from_this();
    if (self->cqes_.empty() && !self->error_) {
      self->arrival_.Reset();
      co_await self->arrival_.WaitFor(timeout);
    }
    co_return self->Poll();
  }

  /// Delivers a CQE (called by the RNIC model). Overflow trips the error
  /// state and kills every attached QP.
  void Push(const WorkCompletion& wc);

  /// Administrative teardown (coroutine-aware shutdown): moves the CQ to
  /// the error state and wakes any parked Next*/NextBatch waiter so its
  /// owning poll loop drains the remaining CQEs and runs to completion
  /// instead of leaking a suspended frame. Does NOT tear down attached
  /// QPs — disconnect those first.
  void Shutdown() {
    error_ = true;
    arrival_.Pulse();
  }

  void AttachQp(QueuePair* qp) { qps_.push_back(qp); }
  void DetachQp(QueuePair* qp);

  /// Optional depth gauge (typically the node-wide CQ high-water mark);
  /// sampled on every Push.
  void set_depth_gauge(obs::Gauge* gauge) { depth_gauge_ = gauge; }

  /// Optional histogram of non-empty PollBatch drain sizes.
  void set_poll_batch_hist(obs::LogLinearHistogram* hist) {
    poll_batch_hist_ = hist;
  }

  bool in_error() const { return error_; }
  size_t depth() const { return cqes_.size(); }
  int capacity() const { return capacity_; }
  uint64_t total_completions() const { return total_; }

 private:
  sim::Simulator& sim_;
  int capacity_;
  std::deque<WorkCompletion> cqes_;
  sim::Event arrival_;
  std::vector<QueuePair*> qps_;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::LogLinearHistogram* poll_batch_hist_ = nullptr;
  bool error_ = false;
  uint64_t total_ = 0;
};

}  // namespace rdma
}  // namespace kafkadirect

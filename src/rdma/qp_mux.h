// QpMux + ConnectionCache: the connection layer of the million-client
// architecture (DESIGN.md §14).
//
// QpMux is the broker-side directory of *logical client streams* carried
// over a small pool of transport QPs (RDMAvisor-style multiplexing): each
// stream is identified by the 32-bit `stream` word in the 24-byte ctrl
// header, gets a per-stream credit window layered on the SRQ (so the
// aggregate inbound ctrl rate stays bounded by the shared pool), and keeps
// its wire-visible metadata — current transport QP, credit window,
// committed-record count — in one SlotArena slot. The committed count is
// what makes reconnect exactly-once: it survives transport-QP eviction,
// and the re-open grant replays it to the client, which then resolves or
// re-sends its unacked records.
//
// ConnectionCache is the DCT-like on-demand transport layer: an LRU of
// live QPs, touched on every inbound completion, evicting the coldest
// connection when capacity is hit. The evict hook disconnects the QP
// (clients lazily reconnect on next use), so the live QP count is
// O(active clients) instead of O(total clients).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/byte_order.h"
#include "obs/metrics.h"
#include "rdma/slot_arena.h"

namespace kafkadirect {
namespace rdma {

class QueuePair;

/// One logical client stream. The canonical copy of the mutable fields
/// lives in the stream's arena slot (WriteThrough/ReadBack); this struct
/// is the broker's decoded working view.
struct MuxStream {
  uint32_t id = 0;
  uint32_t qp_num = 0;    // current transport QP; 0 = detached (evicted)
  uint32_t credits = 0;   // remaining notify credits
  uint32_t slot = 0;      // SlotArena slot index
  uint64_t committed = 0; // records committed on this stream (resync anchor)
};

class QpMux {
 public:
  /// Slot layout: id(4) qp_num(4) credits(4) reserved(4) committed(8).
  static constexpr uint32_t kSlotBytes = 24;

  enum class OpenResult {
    kAdmitted,    // new stream registered
    kReattached,  // known stream re-bound to a (possibly new) transport QP
    kRejected,    // no slot available (arena or admission limit)
  };

  /// `max_streams` caps simultaneously-open streams (0 = arena capacity);
  /// `stream_credits` is the per-stream notify window granted at open.
  QpMux(SlotArena& arena, uint32_t max_streams, uint32_t stream_credits,
        obs::MetricsRegistry& metrics);

  /// Opens (or re-attaches) stream `id` on transport QP `qp_num`.
  OpenResult Open(uint32_t id, uint32_t qp_num, MuxStream** out);
  MuxStream* Find(uint32_t id);
  bool Close(uint32_t id);

  /// Marks every stream carried by `qp_num` as detached (eviction / QP
  /// failure). Streams stay registered — their committed counts are the
  /// reconnect resync anchor.
  void DetachQp(uint32_t qp_num);

  /// Consumes one notify credit; false when the window is dry.
  bool ConsumeCredit(MuxStream* s);
  /// Returns one credit with the ack (receiver-paced replenishment).
  void RefillCredit(MuxStream* s);
  /// Records one committed record and writes the slot back.
  void RecordCommit(MuxStream* s);

  size_t active() const { return streams_.size(); }
  uint32_t max_streams() const { return max_streams_; }
  uint32_t stream_credits() const { return stream_credits_; }
  uint64_t opened() const { return opened_total_; }
  SlotArena& arena() { return arena_; }

 private:
  void WriteThrough(const MuxStream& s);

  SlotArena& arena_;
  uint32_t max_streams_;
  uint32_t stream_credits_;
  std::unordered_map<uint32_t, MuxStream> streams_;
  uint64_t opened_total_ = 0;

  obs::Counter* opened_counter_;
  obs::Counter* reattached_counter_;
  obs::Counter* credit_stalls_;
  obs::Gauge* active_gauge_;
  obs::Gauge* meta_bytes_gauge_;
};

/// LRU cache of live transport QPs keyed by qp_num.
class ConnectionCache {
 public:
  using EvictHook =
      std::function<void(uint32_t qp_num, std::shared_ptr<QueuePair> qp)>;

  ConnectionCache(size_t capacity, obs::MetricsRegistry& metrics);

  void set_evict_hook(EvictHook hook) { evict_hook_ = std::move(hook); }

  /// Registers a live QP as most-recently-used; evicts the LRU entry
  /// first when at capacity (the hook runs on the victim).
  void Insert(uint32_t qp_num, std::shared_ptr<QueuePair> qp);

  /// Bumps recency on inbound traffic. Counts a cache hit when known.
  void Touch(uint32_t qp_num);

  /// Removes a QP that died on its own (no evict hook).
  void Erase(uint32_t qp_num);

  bool Contains(uint32_t qp_num) const {
    return index_.find(qp_num) != index_.end();
  }
  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_total_; }

 private:
  struct Entry {
    uint32_t qp_num;
    std::shared_ptr<QueuePair> qp;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint32_t, std::list<Entry>::iterator> index_;
  EvictHook evict_hook_;
  uint64_t evictions_total_ = 0;

  obs::Counter* hits_;
  obs::Counter* evictions_counter_;
  obs::Gauge* live_gauge_;
};

}  // namespace rdma
}  // namespace kafkadirect

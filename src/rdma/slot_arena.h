// SlotArena: one large registered memory region carved into fixed-size
// slots — the hugepage-analogue MR arena of the million-client connection
// architecture (DESIGN.md §14).
//
// The paper-exact broker registers a fresh MemoryRegion per consumer
// session and would do the same per producer stream, paying
// Rnic::RegistrationCost (page pinning, ~20 µs) and one rkey-table entry
// for every client. The arena inverts that: ONE registration at
// construction covers every slot, so handing metadata to the N-th client
// is a free-list pop — O(1) host work, zero additional pinned bytes, and
// the broker's per-client metadata footprint is bounded by the number of
// *active* clients (slots are recycled on stream close / session end),
// not the total client population.
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "rdma/memory_region.h"
#include "rdma/rnic.h"

namespace kafkadirect {
namespace rdma {

class SlotArena {
 public:
  /// Registers `num_slots * slot_size` bytes as a single MemoryRegion with
  /// `access` permissions. The registration cost is paid once by the
  /// caller (charge rnic.RegistrationCost(bytes()) where appropriate).
  SlotArena(Rnic& rnic, uint32_t slot_size, uint32_t num_slots,
            uint32_t access);
  ~SlotArena();
  SlotArena(const SlotArena&) = delete;
  SlotArena& operator=(const SlotArena&) = delete;

  /// O(1): bump allocation until the arena has been fully touched once,
  /// free-list pop afterwards. Returns -1 when every slot is in use.
  int32_t Alloc();

  /// Returns a slot to the free list.
  void Free(uint32_t slot);

  uint8_t* SlotPtr(uint32_t slot) {
    KD_CHECK(slot < num_slots_);
    return storage_.data() + static_cast<size_t>(slot) * slot_size_;
  }
  /// Remote virtual address of a slot (for one-sided access grants).
  uint64_t SlotAddr(uint32_t slot) {
    return mr_->addr() + static_cast<uint64_t>(slot) * slot_size_;
  }

  const MemoryRegionPtr& mr() const { return mr_; }
  uint32_t slot_size() const { return slot_size_; }
  uint32_t num_slots() const { return num_slots_; }
  uint32_t used() const { return used_; }
  /// High-water mark of simultaneously-used slots — what the scaling bench
  /// asserts stays O(active clients).
  uint32_t peak_used() const { return peak_used_; }
  /// Total pinned bytes (constant for the arena's lifetime).
  uint64_t bytes() const { return storage_.size(); }
  /// Bytes covered by the high-water mark of live slots.
  uint64_t peak_used_bytes() const {
    return static_cast<uint64_t>(peak_used_) * slot_size_;
  }

 private:
  Rnic& rnic_;
  uint32_t slot_size_;
  uint32_t num_slots_;
  std::vector<uint8_t> storage_;
  MemoryRegionPtr mr_;
  std::vector<uint32_t> free_list_;
  uint32_t bump_ = 0;       // next never-used slot
  uint32_t used_ = 0;
  uint32_t peak_used_ = 0;
};

}  // namespace rdma
}  // namespace kafkadirect

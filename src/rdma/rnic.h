// Rnic: one RDMA-capable NIC attached to a fabric node. Owns the memory
// registration table, the atomic execution unit, and QP creation.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "net/fabric.h"
#include "rdma/memory_region.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace kafkadirect {
namespace rdma {

class QueuePair;
class CompletionQueue;
class SharedReceiveQueue;

class Rnic {
 public:
  Rnic(sim::Simulator& sim, net::Fabric& fabric, net::NodeId node)
      : sim_(sim), fabric_(fabric), node_(node), atomic_unit_(sim, 1) {}
  Rnic(const Rnic&) = delete;
  Rnic& operator=(const Rnic&) = delete;

  /// Registers `len` bytes at `base` for remote access. Comparable to
  /// mmap + ibv_reg_mr in the paper's produce/consume access grants.
  StatusOr<MemoryRegionPtr> RegisterMemory(uint8_t* base, uint64_t len,
                                           uint32_t access);

  /// Revokes and removes a registration.
  Status DeregisterMemory(const MemoryRegionPtr& mr);

  /// rkey lookup; nullptr when unknown or invalidated.
  MemoryRegion* LookupMr(uint32_t rkey);

  /// CPU time to register `len` bytes (page pinning etc.); charged by the
  /// code path that performs the registration.
  sim::TimeNs RegistrationCost(uint64_t len) const {
    const RdmaModel& m = fabric_.cost().rdma;
    (void)m;
    return 20000 + static_cast<sim::TimeNs>(0.02 * static_cast<double>(len));
  }

  std::shared_ptr<CompletionQueue> CreateCq(int capacity = 0);
  std::shared_ptr<QueuePair> CreateQp(std::shared_ptr<CompletionQueue> send_cq,
                                      std::shared_ptr<CompletionQueue> recv_cq);
  /// SRQ-attached QP (ibv_create_qp with srq set): inbound Send /
  /// WriteWithImm consume from `srq` instead of a per-QP receive queue.
  std::shared_ptr<QueuePair> CreateQp(std::shared_ptr<CompletionQueue> send_cq,
                                      std::shared_ptr<CompletionQueue> recv_cq,
                                      std::shared_ptr<SharedReceiveQueue> srq);
  /// Shared receive pool; max_wr <= 0 takes the cost model default.
  std::shared_ptr<SharedReceiveQueue> CreateSrq(int max_wr = 0);

  sim::Simulator& simulator() { return sim_; }
  net::Fabric& fabric() { return fabric_; }
  net::NodeId node() const { return node_; }
  const CostModel& cost() const { return fabric_.cost(); }
  /// The serial unit executing remote atomics (2.68 Mops/s ceiling).
  sim::Resource& atomic_unit() { return atomic_unit_; }

  uint64_t atomics_executed() const { return atomics_executed_; }
  void CountAtomic() { atomics_executed_++; }

  /// Bytes currently pinned for RDMA — the §7 memory-usage cost of
  /// KafkaDirect (every RDMA-accessible file must stay mapped in DRAM).
  uint64_t registered_bytes() const { return registered_bytes_; }
  /// High-water mark of registered_bytes().
  uint64_t peak_registered_bytes() const { return peak_registered_bytes_; }

 private:
  sim::Simulator& sim_;
  net::Fabric& fabric_;
  net::NodeId node_;
  sim::Resource atomic_unit_;
  uint32_t next_rkey_ = 1;
  std::unordered_map<uint32_t, MemoryRegionPtr> mrs_;
  uint64_t atomics_executed_ = 0;
  uint64_t registered_bytes_ = 0;
  uint64_t peak_registered_bytes_ = 0;
};

}  // namespace rdma
}  // namespace kafkadirect

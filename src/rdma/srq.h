// SharedReceiveQueue: ibv_srq analogue — one pool of posted receive
// buffers serving every QP attached to it, so a server's receive-buffer
// footprint is sized for aggregate inbound rate instead of per connection
// (the standard many-client RDMA scaling lever; see DESIGN.md §10).
//
// Semantics reproduced from verbs SRQs:
//  - any attached QP's inbound Send / WriteWithImm consumes the pool head;
//  - a drained SRQ surfaces the failure on the *receiver's* CQ (an RNR
//    error CQE on the receiving QP) while the initiator sees its WR
//    flushed — unlike the plain-RQ RNR path, where only the initiator
//    learns of the drop;
//  - an armed limit (ibv_modify_srq SRQ_LIMIT) fires one async event when
//    the pool dips below the watermark after a consume, then disarms;
//  - QP teardown does NOT flush SRQ entries — they stay posted for the
//    surviving QPs (real SRQ recvs are only flushed when the SRQ itself
//    is destroyed).
#pragma once

#include <deque>
#include <span>

#include "common/status.h"
#include "obs/metrics.h"
#include "rdma/verbs.h"
#include "sim/awaitable.h"
#include "sim/simulator.h"

namespace kafkadirect {
namespace rdma {

class SharedReceiveQueue {
 public:
  /// `metrics` registers the process-wide SRQ instruments
  /// (kd.rdma.srq.posted / .consumed / .depth); registration allocates
  /// once here, updates are pointer bumps.
  SharedReceiveQueue(sim::Simulator& sim, int max_wr,
                     obs::MetricsRegistry& metrics);
  SharedReceiveQueue(const SharedReceiveQueue&) = delete;
  SharedReceiveQueue& operator=(const SharedReceiveQueue&) = delete;

  /// Posts one receive buffer to the shared pool.
  Status PostRecv(uint64_t wr_id, uint8_t* buf, uint32_t len);

  /// Postlist variant: all-or-nothing. Either every request is posted or
  /// none is (capacity is checked up front).
  Status PostRecv(std::span<const RecvRequest> reqs);

  /// Consumes the pool head (called by an attached QP's responder path).
  /// False when the pool is drained. Fires the limit event when an armed
  /// watermark is crossed.
  bool TryTake(RecvRequest* out);

  /// Arms the low-watermark event: after the next consume that leaves
  /// depth() < `limit`, limit_event() pulses once and the limit disarms
  /// (ibv_modify_srq IBV_SRQ_LIMIT semantics). limit == 0 disarms.
  void ArmLimit(size_t limit);

  /// Pulsed (not latched) on each armed watermark crossing.
  sim::Event& limit_event() { return limit_event_; }

  size_t depth() const { return pool_.size(); }
  int max_wr() const { return max_wr_; }
  uint32_t srq_num() const { return srq_num_; }
  size_t armed_limit() const { return limit_; }

  uint64_t posted() const { return total_posted_; }
  uint64_t consumed() const { return total_consumed_; }
  uint64_t limit_events() const { return limit_events_fired_; }

 private:
  void CheckLimit();

  int max_wr_;
  uint32_t srq_num_;
  std::deque<RecvRequest> pool_;
  sim::Event limit_event_;
  size_t limit_ = 0;  // 0 = disarmed

  uint64_t total_posted_ = 0;
  uint64_t total_consumed_ = 0;
  uint64_t limit_events_fired_ = 0;

  obs::Counter* posted_counter_;
  obs::Counter* consumed_counter_;
  obs::Gauge* depth_gauge_;
};

}  // namespace rdma
}  // namespace kafkadirect

#include "rdma/slot_arena.h"

namespace kafkadirect {
namespace rdma {

SlotArena::SlotArena(Rnic& rnic, uint32_t slot_size, uint32_t num_slots,
                     uint32_t access)
    : rnic_(rnic),
      slot_size_(slot_size),
      num_slots_(num_slots),
      storage_(static_cast<size_t>(slot_size) * num_slots) {
  KD_CHECK(slot_size > 0 && num_slots > 0);
  auto mr = rnic_.RegisterMemory(storage_.data(), storage_.size(), access);
  KD_CHECK(mr.ok());
  mr_ = std::move(mr).value();
}

SlotArena::~SlotArena() {
  if (mr_ != nullptr) (void)rnic_.DeregisterMemory(mr_);
}

int32_t SlotArena::Alloc() {
  uint32_t slot;
  if (!free_list_.empty()) {
    slot = free_list_.back();
    free_list_.pop_back();
  } else if (bump_ < num_slots_) {
    slot = bump_++;
  } else {
    return -1;
  }
  used_++;
  if (used_ > peak_used_) peak_used_ = used_;
  return static_cast<int32_t>(slot);
}

void SlotArena::Free(uint32_t slot) {
  KD_CHECK(slot < num_slots_);
  KD_CHECK(used_ > 0);
  used_--;
  free_list_.push_back(slot);
}

}  // namespace rdma
}  // namespace kafkadirect

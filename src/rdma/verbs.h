// Verbs-style type definitions: work requests, completions, access flags.
// Modeled after the InfiniBand verbs API surface KafkaDirect uses (via
// DiSNI): Send/Recv, RDMA Write, WriteWithImm, RDMA Read, and the two
// one-sided atomics (Compare-and-Swap, Fetch-and-Add).
#pragma once

#include <cstdint>

namespace kafkadirect {
namespace rdma {

enum class Opcode : uint8_t {
  kSend,          // two-sided; lands in a posted receive buffer
  kWrite,         // one-sided write, no responder notification
  kWriteWithImm,  // one-sided write + 32-bit immediate; consumes a recv WR
  kRead,          // one-sided read
  kCompSwap,      // 8-byte remote compare-and-swap
  kFetchAdd,      // 8-byte remote fetch-and-add
  // Responder-side completion opcodes:
  kRecv,          // a Send landed
  kRecvWithImm,   // a WriteWithImm landed
};

const char* OpcodeName(Opcode op);

enum class WcStatus : uint8_t {
  kSuccess,
  kLocalError,        // bad local arguments
  kRemoteAccessError, // rkey/bounds/permission failure at the responder
  kRnrRetryExceeded,  // responder had no receive posted
  kWrFlushed,         // QP moved to error; request never executed
};

const char* WcStatusName(WcStatus status);

/// Remote memory access permissions (subset of ibv_access_flags).
enum AccessFlags : uint32_t {
  kAccessNone = 0,
  kAccessRemoteWrite = 1u << 0,
  kAccessRemoteRead = 1u << 1,
  kAccessRemoteAtomic = 1u << 2,
};

/// A work request posted to a QP send queue.
struct WorkRequest {
  /// IBV_SEND_INLINE payload limit (max_inline_data in real QP caps).
  static constexpr uint32_t kMaxInlineData = 64;

  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kWrite;
  bool signaled = true;  // generate a CQE on the initiator when done

  /// Local buffer (source for sends/writes, destination for reads and
  /// atomic results). For atomics, must be 8 bytes if non-null.
  uint8_t* local_addr = nullptr;
  uint32_t length = 0;

  /// IBV_SEND_INLINE analogue: PostSend copies the payload (from
  /// `local_addr`, or already placed in `inline_data`) into the work
  /// request itself, so the caller's buffer is reusable the moment
  /// PostSend returns — no signaled completion needed to reclaim it.
  /// Valid for kSend / kWrite / kWriteWithImm with length <=
  /// kMaxInlineData.
  bool send_inline = false;
  uint8_t inline_data[kMaxInlineData] = {};

  /// Remote target for one-sided operations.
  uint64_t remote_addr = 0;
  uint32_t rkey = 0;

  /// Immediate data for kWriteWithImm.
  uint32_t imm_data = 0;

  /// Atomics: kFetchAdd adds `compare_add`; kCompSwap stores `swap` iff the
  /// current value equals `compare_add`. The prior value is returned into
  /// `local_addr`.
  uint64_t compare_add = 0;
  uint64_t swap = 0;

  /// Tracing correlation id (obs::SpanTracer async span), assigned by
  /// PostSend when tracing is enabled; 0 otherwise.
  uint64_t span_id = 0;

  /// Set by the postlist PostSend overload on every WR after the chain
  /// head (the `next`-pointer analogue). A chained WR pays the cheaper
  /// `postlist_wqe_ns` instead of a full doorbell. Not for callers.
  bool chained = false;
};

/// A receive work request: the buffer a Send / WriteWithImm payload lands
/// in. Posted to a QP's receive queue or to a SharedReceiveQueue.
struct RecvRequest {
  uint64_t wr_id = 0;
  uint8_t* buf = nullptr;
  uint32_t len = 0;
};

/// A completion queue entry.
struct WorkCompletion {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kWrite;
  WcStatus status = WcStatus::kSuccess;
  uint32_t byte_len = 0;   // bytes written/read/received
  uint32_t imm_data = 0;
  bool has_imm = false;
  uint32_t qp_num = 0;     // QP this completion belongs to

  bool ok() const { return status == WcStatus::kSuccess; }
};

}  // namespace rdma
}  // namespace kafkadirect

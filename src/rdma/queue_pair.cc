#include "rdma/queue_pair.h"

#include <algorithm>
#include <cstring>

#include "common/byte_order.h"
#include "rdma/rnic.h"
#include "sim/awaitable.h"

namespace kafkadirect {
namespace rdma {

namespace {
uint32_t NextQpNum() {
  static uint32_t next = 1;
  return next++;
}

bool IsAtomic(Opcode op) {
  return op == Opcode::kCompSwap || op == Opcode::kFetchAdd;
}

bool CanInline(Opcode op) {
  return op == Opcode::kSend || op == Opcode::kWrite ||
         op == Opcode::kWriteWithImm;
}

/// Source bytes of a send/write payload: the WR's own inline copy when
/// IBV_SEND_INLINE was used, the caller's buffer otherwise.
const uint8_t* SendSource(const WorkRequest& wr) {
  return wr.send_inline ? wr.inline_data : wr.local_addr;
}

/// Trace span names per opcode (string literals; the tracer stores
/// pointers, never copies).
const char* SpanName(Opcode op) {
  switch (op) {
    case Opcode::kSend: return "rdma.Send";
    case Opcode::kWrite: return "rdma.Write";
    case Opcode::kWriteWithImm: return "rdma.WriteWithImm";
    case Opcode::kRead: return "rdma.Read";
    case Opcode::kCompSwap: return "rdma.CompSwap";
    case Opcode::kFetchAdd: return "rdma.FetchAdd";
    default: return "rdma.op";
  }
}
}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kSend: return "Send";
    case Opcode::kWrite: return "Write";
    case Opcode::kWriteWithImm: return "WriteWithImm";
    case Opcode::kRead: return "Read";
    case Opcode::kCompSwap: return "CompSwap";
    case Opcode::kFetchAdd: return "FetchAdd";
    case Opcode::kRecv: return "Recv";
    case Opcode::kRecvWithImm: return "RecvWithImm";
  }
  return "?";
}

const char* WcStatusName(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess: return "Success";
    case WcStatus::kLocalError: return "LocalError";
    case WcStatus::kRemoteAccessError: return "RemoteAccessError";
    case WcStatus::kRnrRetryExceeded: return "RnrRetryExceeded";
    case WcStatus::kWrFlushed: return "WrFlushed";
  }
  return "?";
}

void CompletionQueue::Push(const WorkCompletion& wc) {
  if (error_) return;
  if (static_cast<int>(cqes_.size()) >= capacity_) {
    // Verbs CQ overflow: fatal for every QP using this CQ.
    error_ = true;
    auto qps = qps_;  // Fail() mutates attachment lists
    for (QueuePair* qp : qps) qp->FailFromCq();
    arrival_.Pulse();
    return;
  }
  cqes_.push_back(wc);
  total_++;
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(cqes_.size()));
  }
  arrival_.Pulse();
}

void CompletionQueue::DetachQp(QueuePair* qp) {
  std::erase(qps_, qp);
}

QueuePair::QueuePair(Rnic* rnic, std::shared_ptr<CompletionQueue> send_cq,
                     std::shared_ptr<CompletionQueue> recv_cq,
                     std::shared_ptr<SharedReceiveQueue> srq)
    : rnic_(rnic),
      sim_(rnic->simulator()),
      cost_(rnic->cost()),
      send_cq_(std::move(send_cq)),
      recv_cq_(std::move(recv_cq)),
      qp_num_(NextQpNum()),
      send_ch_(rnic->simulator()),
      deliveries_(rnic->simulator()),
      srq_(std::move(srq)),
      error_event_(rnic->simulator()) {
  send_cq_->AttachQp(this);
  if (recv_cq_ != send_cq_) recv_cq_->AttachQp(this);
  // Metric registration (allocates) happens once here; PostSend/PostRecv
  // only bump the resulting pointers.
  obs::Observability& ob = rnic->fabric().obs();
  const std::string prefix = "kd.rdma.qp." + std::to_string(qp_num_) + ".";
  qp_counters_.send = ob.metrics.GetCounter(prefix + "send");
  qp_counters_.write = ob.metrics.GetCounter(prefix + "write");
  qp_counters_.read = ob.metrics.GetCounter(prefix + "read");
  qp_counters_.atomic = ob.metrics.GetCounter(prefix + "atomic");
  qp_counters_.recv = ob.metrics.GetCounter(prefix + "recv");
  qp_counters_.inline_sends = ob.metrics.GetCounter(prefix + "inline_sends");
  qp_counters_.bytes = ob.metrics.GetCounter(prefix + "bytes");
  agg_counters_.send = ob.metrics.GetCounter("kd.rdma.ops.send");
  agg_counters_.write = ob.metrics.GetCounter("kd.rdma.ops.write");
  agg_counters_.read = ob.metrics.GetCounter("kd.rdma.ops.read");
  agg_counters_.atomic = ob.metrics.GetCounter("kd.rdma.ops.atomic");
  agg_counters_.recv = ob.metrics.GetCounter("kd.rdma.ops.recv");
  agg_counters_.inline_sends = ob.metrics.GetCounter("kd.rdma.inline_sends");
  agg_counters_.bytes = ob.metrics.GetCounter("kd.rdma.bytes_posted");
  sig_counters_.wrs_posted = ob.metrics.GetCounter("kd.rdma.wrs_posted");
  sig_counters_.wrs_signaled = ob.metrics.GetCounter("kd.rdma.wrs_signaled");
  sig_counters_.doorbells = ob.metrics.GetCounter("kd.rdma.doorbells");
  sig_counters_.cqes = ob.metrics.GetCounter("kd.rdma.cqes");
  sig_counters_.rnr_events = ob.metrics.GetCounter("kd.rdma.rnr_events");
  postlist_hist_ = ob.metrics.GetHistogram("kd.rdma.postlist_len");
  flight_ = &ob.flight;
  flight_shard_ = sim_.shard_id();
  tracer_ = &ob.tracer;
  if (tracer_->enabled()) {
    trace_track_ =
        tracer_->DefineTrack("rdma", "qp-" + std::to_string(qp_num_));
  }
}

QueuePair::~QueuePair() {
  send_cq_->DetachQp(this);
  if (recv_cq_ != send_cq_) recv_cq_->DetachQp(this);
}

Status QueuePair::PostSend(const WorkRequest& wr) {
  if (state_ != State::kConnected) {
    return Status::Disconnected("PostSend: QP not connected");
  }
  if (outstanding_ >= static_cast<size_t>(rnic_->cost().rdma.max_send_wr)) {
    return Status::ResourceExhausted("PostSend: send queue full");
  }
  if (IsAtomic(wr.opcode)) {
    if (wr.remote_addr % 8 != 0) {
      return Status::InvalidArgument("atomic target must be 8-byte aligned");
    }
  }
  WorkRequest queued = wr;
  if (queued.send_inline) {
    if (!CanInline(queued.opcode)) {
      return Status::InvalidArgument("inline only valid for sends/writes");
    }
    if (queued.length > WorkRequest::kMaxInlineData) {
      return Status::InvalidArgument("inline payload too large");
    }
    // Capture the payload now — this is the point of IBV_SEND_INLINE: the
    // caller's buffer is free for reuse as soon as PostSend returns.
    if (queued.length > 0 && wr.local_addr != nullptr) {
      std::memcpy(queued.inline_data, wr.local_addr, queued.length);
    }
    queued.local_addr = nullptr;
  }
  switch (queued.opcode) {
    case Opcode::kSend:
      qp_counters_.send->Increment();
      agg_counters_.send->Increment();
      break;
    case Opcode::kWrite:
    case Opcode::kWriteWithImm:
      qp_counters_.write->Increment();
      agg_counters_.write->Increment();
      break;
    case Opcode::kRead:
      qp_counters_.read->Increment();
      agg_counters_.read->Increment();
      break;
    case Opcode::kCompSwap:
    case Opcode::kFetchAdd:
      qp_counters_.atomic->Increment();
      agg_counters_.atomic->Increment();
      break;
    default:
      break;
  }
  if (queued.send_inline) {
    qp_counters_.inline_sends->Increment();
    agg_counters_.inline_sends->Increment();
  }
  qp_counters_.bytes->Increment(queued.length);
  agg_counters_.bytes->Increment(queued.length);
  sig_counters_.wrs_posted->Increment();
  if (queued.signaled) sig_counters_.wrs_signaled->Increment();
  if (!queued.chained) sig_counters_.doorbells->Increment();
  flight_->Record(flight_shard_, sim_.Now(), obs::FlightEventType::kVerbPosted,
                  qp_num_, static_cast<uint32_t>(queued.opcode),
                  queued.length);
  // Async span: post -> fabric -> initiator completion. Ends in
  // CompleteInitiator when the CQE (or flush) is delivered.
  queued.span_id = tracer_->AsyncBegin(trace_track_, SpanName(queued.opcode));
  outstanding_++;
  send_ch_.Push(std::move(queued));
  return Status::OK();
}

Status QueuePair::PostSend(std::span<const WorkRequest> wrs) {
  if (wrs.empty()) return Status::OK();
  if (state_ != State::kConnected) {
    return Status::Disconnected("PostSend: QP not connected");
  }
  if (outstanding_ + wrs.size() >
      static_cast<size_t>(rnic_->cost().rdma.max_send_wr)) {
    return Status::ResourceExhausted(
        "PostSend: postlist exceeds send queue capacity");
  }
  // All-or-nothing: validate the whole chain before posting any of it.
  for (const WorkRequest& wr : wrs) {
    if (IsAtomic(wr.opcode) && wr.remote_addr % 8 != 0) {
      return Status::InvalidArgument("atomic target must be 8-byte aligned");
    }
    if (wr.send_inline) {
      if (!CanInline(wr.opcode)) {
        return Status::InvalidArgument("inline only valid for sends/writes");
      }
      if (wr.length > WorkRequest::kMaxInlineData) {
        return Status::InvalidArgument("inline payload too large");
      }
    }
  }
  for (size_t i = 0; i < wrs.size(); i++) {
    WorkRequest wr = wrs[i];
    wr.chained = i > 0;  // chain head rings the only doorbell
    Status s = PostSend(wr);
    if (!s.ok()) return s;  // unreachable after the validation above
  }
  postlist_hist_->Add(static_cast<int64_t>(wrs.size()));
  return Status::OK();
}

Status QueuePair::PostRecv(uint64_t wr_id, uint8_t* buf, uint32_t len) {
  if (state_ == State::kError) {
    return Status::Disconnected("PostRecv: QP in error state");
  }
  if (srq_ != nullptr) {
    return Status::InvalidArgument(
        "PostRecv: QP uses an SRQ; post to the SRQ instead");
  }
  if (recvs_.size() >= static_cast<size_t>(rnic_->cost().rdma.max_recv_wr)) {
    return Status::ResourceExhausted("PostRecv: receive queue full");
  }
  qp_counters_.recv->Increment();
  agg_counters_.recv->Increment();
  recvs_.push_back(RecvRequest{wr_id, buf, len});
  return Status::OK();
}

Status QueuePair::PostRecv(std::span<const RecvRequest> reqs) {
  if (reqs.empty()) return Status::OK();
  if (state_ == State::kError) {
    return Status::Disconnected("PostRecv: QP in error state");
  }
  if (srq_ != nullptr) {
    return Status::InvalidArgument(
        "PostRecv: QP uses an SRQ; post to the SRQ instead");
  }
  if (recvs_.size() + reqs.size() >
      static_cast<size_t>(rnic_->cost().rdma.max_recv_wr)) {
    return Status::ResourceExhausted(
        "PostRecv: postlist exceeds receive queue capacity");
  }
  for (const RecvRequest& r : reqs) {
    recvs_.push_back(r);
  }
  qp_counters_.recv->Increment(reqs.size());
  agg_counters_.recv->Increment(reqs.size());
  return Status::OK();
}

bool QueuePair::TakeRecv(RecvRequest* out) {
  if (srq_ != nullptr) return srq_->TryTake(out);
  if (recvs_.empty()) return false;
  *out = recvs_.front();
  recvs_.pop_front();
  return true;
}

void QueuePair::FailRnr(const WorkRequest& wr, QueuePair* initiator,
                        Opcode rop, sim::TimeNs prop) {
  sig_counters_.rnr_events->Increment();
  flight_->Record(flight_shard_, sim_.Now(), obs::FlightEventType::kRnr,
                  qp_num_, static_cast<uint32_t>(wr.opcode), 0);
  if (srq_ != nullptr) {
    // SRQ drained: the receiver's CQ sees the RNR error (its QP is what
    // breaks), and the initiator's WR is flushed with the teardown.
    WorkCompletion rwc;
    rwc.opcode = rop;
    rwc.status = WcStatus::kRnrRetryExceeded;
    rwc.qp_num = qp_num_;
    recv_cq_->Push(rwc);
    initiator->CompleteInitiator(wr, WcStatus::kWrFlushed,
                                 sim_.Now() + prop, 0);
  } else {
    // Plain RQ: receiver-not-ready with no retries configured — only the
    // initiator learns why.
    initiator->CompleteInitiator(wr, WcStatus::kRnrRetryExceeded,
                                 sim_.Now() + prop, 0);
  }
  Disconnect();
}

void QueuePair::Disconnect() {
  if (state_ == State::kError) return;
  Fail();
  if (peer_ != nullptr) peer_->Fail();
}

void QueuePair::FailFromCq() { Disconnect(); }

void QueuePair::Fail() {
  if (state_ == State::kError) return;
  state_ = State::kError;
  // Flush unprocessed send WRs.
  while (auto wr = send_ch_.TryPop()) {
    CompleteInitiator(*wr, WcStatus::kWrFlushed, sim_.Now(), 0);
  }
  send_ch_.Close();
  deliveries_.Close();
  // Flush posted receives. SRQ entries are deliberately NOT flushed: they
  // belong to the shared pool and stay posted for surviving QPs.
  while (!recvs_.empty()) {
    RecvRequest r = recvs_.front();
    recvs_.pop_front();
    WorkCompletion wc;
    wc.wr_id = r.wr_id;
    wc.opcode = Opcode::kRecv;
    wc.status = WcStatus::kWrFlushed;
    wc.qp_num = qp_num_;
    recv_cq_->Push(wc);
  }
  error_event_.Set();
}

void QueuePair::CompleteInitiator(const WorkRequest& wr, WcStatus status,
                                  sim::TimeNs when, uint32_t byte_len) {
  auto self = shared_from_this();
  const bool cqe = wr.signaled || status != WcStatus::kSuccess;
  if (cqe) when += cost_.rdma.cqe_ns;
  sim_.ScheduleAt(when, [self, wr, status, byte_len, cqe]() {
    if (!self->lazy_sq_reclaim_) {
      // Historical behaviour: every completion frees its SQ slot as soon
      // as the RNIC is done with it, CQE or not.
      if (self->outstanding_ > 0) self->outstanding_--;
    } else if (cqe) {
      // Selective signaling: a CQE tells the driver that this WR and every
      // unsignaled WR completed since the previous CQE are done (RC
      // completes in post order) — reclaim the whole run.
      size_t reclaim = 1 + self->sq_unreclaimed_;
      self->sq_unreclaimed_ = 0;
      self->outstanding_ -= std::min(self->outstanding_, reclaim);
    } else {
      // No CQE: the driver cannot observe this completion yet. The slot
      // stays occupied until the next signaled/errored WR completes — the
      // SQ-full-because-nothing-signaled hazard.
      self->sq_unreclaimed_++;
    }
    self->tracer_->AsyncEnd(self->trace_track_, SpanName(wr.opcode),
                            wr.span_id);
    if (cqe) {
      WorkCompletion wc;
      wc.wr_id = wr.wr_id;
      wc.opcode = wr.opcode;
      wc.status = status;
      wc.byte_len = byte_len;
      wc.qp_num = self->qp_num_;
      self->sig_counters_.cqes->Increment();
      self->send_cq_->Push(wc);
    }
  });
}

void QueuePair::CompleteRecv(const WorkCompletion& wc, sim::TimeNs when) {
  auto self = shared_from_this();
  sim_.ScheduleAt(when + cost_.rdma.notification_ns, [self, wc]() {
    self->sig_counters_.cqes->Increment();
    self->recv_cq_->Push(wc);
  });
}

sim::Co<void> QueuePair::SendEngine(std::shared_ptr<QueuePair> self) {
  sim::Simulator& sim = self->rnic_->simulator();
  net::Fabric& fabric = self->rnic_->fabric();
  const RdmaModel& m = self->rnic_->cost().rdma;
  const net::NodeId my_node = self->rnic_->node();

  while (true) {
    auto popped = co_await self->send_ch_.Pop();
    if (!popped.has_value()) co_return;  // channel closed (QP error)
    WorkRequest wr = *popped;
    if (self->state_ != State::kConnected) {
      self->CompleteInitiator(wr, WcStatus::kWrFlushed, sim.Now(), 0);
      continue;
    }
    // WQE fetch + doorbell + NIC processing, serialized per QP. Chained
    // postlist WRs skip the doorbell — only the chain head rang it.
    co_await sim::Delay(
        sim, (wr.chained ? m.postlist_wqe_ns : m.doorbell_ns) + m.process_ns);
    if (self->state_ != State::kConnected) {
      self->CompleteInitiator(wr, WcStatus::kWrFlushed, sim.Now(), 0);
      continue;
    }
    QueuePair* peer = self->peer_;
    const net::NodeId peer_node = peer->rnic_->node();

    // Wire footprint: payload for writes/sends; request-only for reads and
    // atomics (their data comes back on the response path).
    uint64_t request_payload;
    switch (wr.opcode) {
      case Opcode::kSend:
      case Opcode::kWrite:
      case Opcode::kWriteWithImm:
        request_payload = wr.length;
        break;
      case Opcode::kRead:
        request_payload = 16;
        break;
      case Opcode::kCompSwap:
      case Opcode::kFetchAdd:
        request_payload = 28;
        break;
      default:
        self->CompleteInitiator(wr, WcStatus::kLocalError, sim.Now(), 0);
        continue;
    }
    sim::TimeNs arrival =
        fabric.ReserveTransfer(my_node, peer_node, request_payload);
    // Hand the request to the responder at its arrival time. The channel
    // preserves arrival order, which matches RC in-order delivery.
    auto peer_shared = peer->shared_from_this();
    sim.ScheduleAt(arrival, [peer_shared, wr, self]() {
      if (peer_shared->deliveries_.closed()) {
        // Responder died while the request was in flight.
        self->CompleteInitiator(wr, WcStatus::kWrFlushed, self->sim_.Now(),
                                0);
        return;
      }
      peer_shared->deliveries_.Push(Delivery{wr, self});
    });
  }
}

sim::Co<void> QueuePair::ResponderWorker(std::shared_ptr<QueuePair> self) {
  while (true) {
    auto d = co_await self->deliveries_.Pop();
    if (!d.has_value()) co_return;
    co_await self->Execute(std::move(*d));
  }
}

sim::Co<void> QueuePair::Execute(Delivery d) {
  sim::Simulator& sim = rnic_->simulator();
  net::Fabric& fabric = rnic_->fabric();
  const RdmaModel& m = rnic_->cost().rdma;
  const sim::TimeNs prop = rnic_->cost().link.propagation_ns;
  const WorkRequest& wr = d.wr;
  QueuePair* initiator = d.initiator.get();

  if (state_ != State::kConnected) {
    initiator->CompleteInitiator(wr, WcStatus::kWrFlushed, sim.Now(), 0);
    co_return;
  }

  switch (wr.opcode) {
    case Opcode::kSend: {
      RecvRequest r;
      if (!TakeRecv(&r)) {
        FailRnr(wr, initiator, Opcode::kRecv, prop);
        co_return;
      }
      if (wr.length > r.len) {
        initiator->CompleteInitiator(wr, WcStatus::kRemoteAccessError,
                                     sim.Now() + prop, 0);
        Disconnect();
        co_return;
      }
      if (wr.length > 0 && r.buf != nullptr) {
        std::memcpy(r.buf, SendSource(wr), wr.length);
      }
      WorkCompletion rwc;
      rwc.wr_id = r.wr_id;
      rwc.opcode = Opcode::kRecv;
      rwc.status = WcStatus::kSuccess;
      rwc.byte_len = wr.length;
      rwc.qp_num = qp_num_;
      CompleteRecv(rwc, sim.Now() + m.process_ns);
      sim::TimeNs depart = std::max(sim.Now() + m.process_ns, resp_chain_);
      resp_chain_ = depart;
      initiator->CompleteInitiator(wr, WcStatus::kSuccess,
                                   depart + prop + m.completion_ns, wr.length);
      break;
    }
    case Opcode::kWrite:
    case Opcode::kWriteWithImm: {
      MemoryRegion* mr = rnic_->LookupMr(wr.rkey);
      if (mr == nullptr ||
          !mr->Allows(wr.remote_addr, wr.length, kAccessRemoteWrite)) {
        initiator->CompleteInitiator(wr, WcStatus::kRemoteAccessError,
                                     sim.Now() + prop, 0);
        Disconnect();
        co_return;
      }
      if (wr.length > 0) {
        std::memcpy(mr->Translate(wr.remote_addr), SendSource(wr), wr.length);
      }
      if (wr.opcode == Opcode::kWriteWithImm) {
        RecvRequest r;
        if (!TakeRecv(&r)) {
          FailRnr(wr, initiator, Opcode::kRecvWithImm, prop);
          co_return;
        }
        WorkCompletion rwc;
        rwc.wr_id = r.wr_id;
        rwc.opcode = Opcode::kRecvWithImm;
        rwc.status = WcStatus::kSuccess;
        rwc.byte_len = wr.length;
        rwc.imm_data = wr.imm_data;
        rwc.has_imm = true;
        rwc.qp_num = qp_num_;
        CompleteRecv(rwc, sim.Now() + m.process_ns);
      }
      sim::TimeNs depart = std::max(sim.Now() + m.process_ns, resp_chain_);
      resp_chain_ = depart;
      initiator->CompleteInitiator(wr, WcStatus::kSuccess,
                                   depart + prop + m.completion_ns, wr.length);
      break;
    }
    case Opcode::kRead: {
      MemoryRegion* mr = rnic_->LookupMr(wr.rkey);
      if (mr == nullptr ||
          !mr->Allows(wr.remote_addr, wr.length, kAccessRemoteRead)) {
        initiator->CompleteInitiator(wr, WcStatus::kRemoteAccessError,
                                     sim.Now() + prop, 0);
        Disconnect();
        co_return;
      }
      sim::TimeNs ready = std::max(sim.Now() + m.read_response_ns, resp_chain_);
      sim::TimeNs arrival = fabric.ReserveTransfer(
          rnic_->node(), initiator->rnic_->node(), wr.length, ready);
      resp_chain_ = arrival - prop;  // response serialization end
      // Data is captured when the response lands (see DESIGN.md: readable
      // bytes are immutable by protocol, so late capture is safe).
      uint8_t* src = mr->Translate(wr.remote_addr);
      auto self = shared_from_this();
      auto initiator_shared = initiator->shared_from_this();
      sim.ScheduleAt(arrival, [self, initiator_shared, wr, src]() {
        if (wr.length > 0 && wr.local_addr != nullptr) {
          std::memcpy(wr.local_addr, src, wr.length);
        }
      });
      initiator->CompleteInitiator(wr, WcStatus::kSuccess,
                                   arrival + m.completion_ns, wr.length);
      break;
    }
    case Opcode::kCompSwap:
    case Opcode::kFetchAdd: {
      MemoryRegion* mr = rnic_->LookupMr(wr.rkey);
      if (mr == nullptr ||
          !mr->Allows(wr.remote_addr, 8, kAccessRemoteAtomic)) {
        initiator->CompleteInitiator(wr, WcStatus::kRemoteAccessError,
                                     sim.Now() + prop, 0);
        Disconnect();
        co_return;
      }
      // Serialize on the RNIC's atomic unit — the 2.68 Mops/s ceiling.
      co_await rnic_->atomic_unit().Use(m.atomic_unit_ns);
      rnic_->CountAtomic();
      uint8_t* ptr = mr->Translate(wr.remote_addr);
      uint64_t old = DecodeFixed64(ptr);
      if (wr.opcode == Opcode::kFetchAdd) {
        EncodeFixed64(ptr, old + wr.compare_add);
      } else if (old == wr.compare_add) {
        EncodeFixed64(ptr, wr.swap);
      }
      sim::TimeNs depart = std::max(sim.Now(), resp_chain_);
      resp_chain_ = depart;
      sim::TimeNs arrival = depart + prop;
      uint8_t* result_dst = wr.local_addr;
      sim.ScheduleAt(arrival, [result_dst, old]() {
        if (result_dst != nullptr) EncodeFixed64(result_dst, old);
      });
      initiator->CompleteInitiator(wr, WcStatus::kSuccess,
                                   arrival + m.completion_ns, 8);
      break;
    }
    default:
      initiator->CompleteInitiator(wr, WcStatus::kLocalError, sim.Now(), 0);
      break;
  }
}

Status Connect(const std::shared_ptr<QueuePair>& a,
               const std::shared_ptr<QueuePair>& b) {
  if (a->state_ != QueuePair::State::kInit ||
      b->state_ != QueuePair::State::kInit) {
    return Status::FailedPrecondition("Connect: QP not in INIT state");
  }
  a->peer_ = b.get();
  b->peer_ = a.get();
  a->state_ = QueuePair::State::kConnected;
  b->state_ = QueuePair::State::kConnected;
  sim::Simulator& sim = a->rnic_->simulator();
  sim::Spawn(sim, QueuePair::SendEngine(a));
  sim::Spawn(sim, QueuePair::ResponderWorker(a));
  sim::Spawn(sim, QueuePair::SendEngine(b));
  sim::Spawn(sim, QueuePair::ResponderWorker(b));
  return Status::OK();
}

}  // namespace rdma
}  // namespace kafkadirect

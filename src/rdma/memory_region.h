// MemoryRegion: a registered, remotely-accessible memory range.
//
// "Virtual addresses" on the wire are the actual host addresses of the
// backing buffers, exactly as an RNIC would see them; rkey lookup, bounds
// and permission checks happen at the responder when an operation executes.
// Deregistering a region immediately revokes remote access (this is the
// mechanism the paper uses to fence failed producers).
#pragma once

#include <cstdint>
#include <memory>

#include "rdma/verbs.h"

namespace kafkadirect {
namespace rdma {

class MemoryRegion {
 public:
  MemoryRegion(uint32_t rkey, uint8_t* base, uint64_t length, uint32_t access)
      : rkey_(rkey), base_(base), length_(length), access_(access) {}

  uint32_t rkey() const { return rkey_; }
  /// The remote virtual address clients target with one-sided ops.
  uint64_t addr() const { return reinterpret_cast<uint64_t>(base_); }
  uint8_t* base() const { return base_; }
  uint64_t length() const { return length_; }
  uint32_t access() const { return access_; }
  bool valid() const { return valid_; }

  /// Revokes all remote access through this region.
  void Invalidate() { valid_ = false; }

  /// True if [addr, addr+len) is inside the region and `need` permissions
  /// are granted.
  bool Allows(uint64_t addr, uint64_t len, uint32_t need) const {
    if (!valid_) return false;
    if ((access_ & need) != need) return false;
    uint64_t base = this->addr();
    return addr >= base && len <= length_ && addr - base <= length_ - len;
  }

  /// Host pointer for a validated remote address.
  uint8_t* Translate(uint64_t addr) const {
    return base_ + (addr - this->addr());
  }

 private:
  uint32_t rkey_;
  uint8_t* base_;
  uint64_t length_;
  uint32_t access_;
  bool valid_ = true;
};

using MemoryRegionPtr = std::shared_ptr<MemoryRegion>;

}  // namespace rdma
}  // namespace kafkadirect

#include "rdma/srq.h"

namespace kafkadirect {
namespace rdma {

namespace {
uint32_t NextSrqNum() {
  static uint32_t next = 1;
  return next++;
}
}  // namespace

SharedReceiveQueue::SharedReceiveQueue(sim::Simulator& sim, int max_wr,
                                       obs::MetricsRegistry& metrics)
    : max_wr_(max_wr),
      srq_num_(NextSrqNum()),
      limit_event_(sim),
      posted_counter_(metrics.GetCounter("kd.rdma.srq.posted")),
      consumed_counter_(metrics.GetCounter("kd.rdma.srq.consumed")),
      depth_gauge_(metrics.GetGauge("kd.rdma.srq.depth")) {
  // Arena bound for the live monitor's srq_bounded watcher: depth may never
  // exceed the largest configured SRQ arena.
  obs::Gauge* cap = metrics.GetGauge("kd.rdma.srq.capacity");
  if (max_wr_ > cap->value()) cap->Set(max_wr_);
}

Status SharedReceiveQueue::PostRecv(uint64_t wr_id, uint8_t* buf,
                                    uint32_t len) {
  if (pool_.size() >= static_cast<size_t>(max_wr_)) {
    return Status::ResourceExhausted("SRQ PostRecv: pool full");
  }
  pool_.push_back(RecvRequest{wr_id, buf, len});
  total_posted_++;
  posted_counter_->Increment();
  depth_gauge_->Add(1);
  return Status::OK();
}

Status SharedReceiveQueue::PostRecv(std::span<const RecvRequest> reqs) {
  if (pool_.size() + reqs.size() > static_cast<size_t>(max_wr_)) {
    return Status::ResourceExhausted("SRQ PostRecv: postlist exceeds pool");
  }
  for (const RecvRequest& r : reqs) {
    pool_.push_back(r);
  }
  total_posted_ += reqs.size();
  posted_counter_->Increment(reqs.size());
  depth_gauge_->Add(static_cast<int64_t>(reqs.size()));
  return Status::OK();
}

bool SharedReceiveQueue::TryTake(RecvRequest* out) {
  if (pool_.empty()) return false;
  *out = pool_.front();
  pool_.pop_front();
  total_consumed_++;
  consumed_counter_->Increment();
  depth_gauge_->Add(-1);
  CheckLimit();
  return true;
}

void SharedReceiveQueue::ArmLimit(size_t limit) { limit_ = limit; }

void SharedReceiveQueue::CheckLimit() {
  if (limit_ == 0 || pool_.size() >= limit_) return;
  limit_ = 0;  // one-shot: fires once, then must be re-armed
  limit_events_fired_++;
  limit_event_.Pulse();
}

}  // namespace rdma
}  // namespace kafkadirect

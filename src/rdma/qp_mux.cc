#include "rdma/qp_mux.h"

namespace kafkadirect {
namespace rdma {

QpMux::QpMux(SlotArena& arena, uint32_t max_streams, uint32_t stream_credits,
             obs::MetricsRegistry& metrics)
    : arena_(arena),
      max_streams_(max_streams == 0 ? arena.num_slots() : max_streams),
      stream_credits_(stream_credits) {
  opened_counter_ = metrics.GetCounter("kd.rdma.mux.streams_opened");
  reattached_counter_ = metrics.GetCounter("kd.rdma.cache.reconnects");
  credit_stalls_ = metrics.GetCounter("kd.rdma.mux.credit_stalls");
  active_gauge_ = metrics.GetGauge("kd.rdma.mux.streams_active");
  meta_bytes_gauge_ = metrics.GetGauge("kd.rdma.mux.meta_bytes");
}

void QpMux::WriteThrough(const MuxStream& s) {
  uint8_t* p = arena_.SlotPtr(s.slot);
  EncodeFixed32(p, s.id);
  EncodeFixed32(p + 4, s.qp_num);
  EncodeFixed32(p + 8, s.credits);
  EncodeFixed32(p + 12, 0);
  EncodeFixed64(p + 16, s.committed);
}

QpMux::OpenResult QpMux::Open(uint32_t id, uint32_t qp_num, MuxStream** out) {
  auto it = streams_.find(id);
  if (it != streams_.end()) {
    MuxStream& s = it->second;
    if (s.qp_num != qp_num) reattached_counter_->Increment();
    s.qp_num = qp_num;
    s.credits = stream_credits_;
    WriteThrough(s);
    if (out != nullptr) *out = &s;
    return OpenResult::kReattached;
  }
  if (streams_.size() >= max_streams_) return OpenResult::kRejected;
  int32_t slot = arena_.Alloc();
  if (slot < 0) return OpenResult::kRejected;
  MuxStream s;
  s.id = id;
  s.qp_num = qp_num;
  s.credits = stream_credits_;
  s.slot = static_cast<uint32_t>(slot);
  s.committed = 0;
  WriteThrough(s);
  auto [ins, _] = streams_.emplace(id, s);
  opened_total_++;
  opened_counter_->Increment();
  active_gauge_->Set(static_cast<int64_t>(streams_.size()));
  // Live bytes, not peak: the gauge answers "how much metadata is pinned
  // right now". Peak is tracked by the arena itself (peak_used_bytes) and
  // surfaced by the bench as meta_peak_bytes.
  meta_bytes_gauge_->Set(static_cast<int64_t>(streams_.size()) *
                         arena_.slot_size());
  if (out != nullptr) *out = &ins->second;
  return OpenResult::kAdmitted;
}

MuxStream* QpMux::Find(uint32_t id) {
  auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : &it->second;
}

bool QpMux::Close(uint32_t id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) return false;
  arena_.Free(it->second.slot);
  streams_.erase(it);
  active_gauge_->Set(static_cast<int64_t>(streams_.size()));
  meta_bytes_gauge_->Set(static_cast<int64_t>(streams_.size()) *
                         arena_.slot_size());
  return true;
}

void QpMux::DetachQp(uint32_t qp_num) {
  for (auto& [id, s] : streams_) {
    if (s.qp_num == qp_num) {
      s.qp_num = 0;
      WriteThrough(s);
    }
  }
}

bool QpMux::ConsumeCredit(MuxStream* s) {
  if (s->credits == 0) {
    credit_stalls_->Increment();
    return false;
  }
  s->credits--;
  WriteThrough(*s);
  return true;
}

void QpMux::RefillCredit(MuxStream* s) {
  if (s->credits < stream_credits_) s->credits++;
  WriteThrough(*s);
}

void QpMux::RecordCommit(MuxStream* s) {
  s->committed++;
  WriteThrough(*s);
}

ConnectionCache::ConnectionCache(size_t capacity,
                                 obs::MetricsRegistry& metrics)
    : capacity_(capacity == 0 ? 1 : capacity) {
  hits_ = metrics.GetCounter("kd.rdma.cache.hits");
  evictions_counter_ = metrics.GetCounter("kd.rdma.cache.evictions");
  live_gauge_ = metrics.GetGauge("kd.rdma.cache.live_qps");
}

void ConnectionCache::Insert(uint32_t qp_num, std::shared_ptr<QueuePair> qp) {
  auto it = index_.find(qp_num);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->qp = std::move(qp);
    return;
  }
  while (index_.size() >= capacity_) {
    Entry victim = lru_.back();
    index_.erase(victim.qp_num);
    lru_.pop_back();
    evictions_total_++;
    evictions_counter_->Increment();
    live_gauge_->Set(static_cast<int64_t>(index_.size()));
    if (evict_hook_) evict_hook_(victim.qp_num, std::move(victim.qp));
  }
  lru_.push_front(Entry{qp_num, std::move(qp)});
  index_[qp_num] = lru_.begin();
  live_gauge_->Set(static_cast<int64_t>(index_.size()));
}

void ConnectionCache::Touch(uint32_t qp_num) {
  auto it = index_.find(qp_num);
  if (it == index_.end()) return;
  hits_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);
}

void ConnectionCache::Erase(uint32_t qp_num) {
  auto it = index_.find(qp_num);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  live_gauge_->Set(static_cast<int64_t>(index_.size()));
}

}  // namespace rdma
}  // namespace kafkadirect

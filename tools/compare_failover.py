#!/usr/bin/env python3
"""Compare a tbl_failover JSON report against the baseline.

The failover bench (DESIGN.md §15) is deterministic in virtual time, so
every reported metric — per-endpoint produce/retry/delivery counts,
delivery-delay percentiles through the leader kill, and the cluster-level
controller term / broker-death / leader-move counters — must match the
committed BENCH_failover.baseline.json within --tolerance (default 10%,
relative, either direction). Key-set drift fails in BOTH directions via
tools/bench_compare.py.

On top of the per-metric diff, the exactly-once claims are checked
directly on the CURRENT report (so a baseline refresh cannot launder them
away):

  - every failover/endpoint_* row must report lost == 0 and dup == 0 —
    no acknowledged record lost, nothing delivered twice, through the
    kill;
  - delivered == produced per endpoint;
  - failover/cluster must report broker_deaths >= 1 — a run where the
    kill never landed is not measuring failover.

Usage: tools/compare_failover.py BASELINE CURRENT [--tolerance 0.10]
"""

import argparse
import sys

import bench_compare


def invariant_failures(rows):
    """The §15 exactly-once claims, checked on the CURRENT report."""
    failures = []
    endpoints = 0
    for name, metrics in sorted(rows.items()):
        if not name.startswith("failover/endpoint_"):
            continue
        endpoints += 1
        for key in ("lost", "dup"):
            if metrics.get(key, 0) != 0:
                failures.append(
                    f"exactly-once violated: {name} reports {key}="
                    f"{metrics[key]}")
        if metrics.get("delivered") != metrics.get("produced"):
            failures.append(
                f"delivery gap: {name} produced {metrics.get('produced')} "
                f"but delivered {metrics.get('delivered')}")
    if endpoints == 0:
        failures.append("no failover/endpoint_* rows in the current report")
    cluster = rows.get("failover/cluster", {})
    if cluster.get("broker_deaths", 0) < 1:
        failures.append(
            "failover/cluster reports no broker death — the kill never "
            "landed, the run measured nothing")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative deviation per metric "
                             "(default 0.10)")
    args = parser.parse_args()

    base = bench_compare.load(args.baseline)
    cur = bench_compare.load(args.current)

    failures, missing, unexpected = bench_compare.diff(
        base, cur, args.tolerance, "BENCH_failover.baseline.json")
    failures.extend(invariant_failures(cur))

    if missing:
        print(f"error: benchmarks missing from current report: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    if unexpected:
        print(f"error: benchmarks not in baseline (refresh it): "
              f"{', '.join(unexpected)}", file=sys.stderr)
        return 1
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print(f"failover: all metrics within {args.tolerance:.0%} of baseline; "
          f"exactly-once invariants passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

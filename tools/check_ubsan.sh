#!/usr/bin/env bash
# Builds the common + sim + obs test binaries under UBSan alone (the "ubsan"
# CMake preset, RelWithDebInfo so the optimizer is on) and runs them. The
# optimized build catches undefined behaviour that only the optimizer
# exploits — signed-overflow folding in the log-linear bucket math, shift
# widths in BucketIndex/BucketUpperBound, and misaligned loads in the SIMD
# CRC32C kernels — which the Debug-mode asan preset can miss.
#
# Usage: tools/check_ubsan.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-ubsan"

cmake --preset ubsan -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target common_test sim_test obs_test

export UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1

"$BUILD_DIR/tests/common_test"
"$BUILD_DIR/tests/sim_test"
"$BUILD_DIR/tests/obs_test"

echo "ubsan: all common + sim + obs tests passed"

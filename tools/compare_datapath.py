#!/usr/bin/env python3
"""Compare an abl_datapath_protocols JSON report against the baseline.

The bench is fully deterministic (virtual-time metrics and event counts),
so on an unchanged datapath every metric matches the committed baseline
exactly. A deviation beyond --tolerance (default 10%, relative, either
direction) on any metric fails the gate: an intended protocol change must
refresh BENCH_datapath_protocols.baseline.json; an unintended one is a
perf or schedule regression.

Zero-valued baselines (e.g. reads_per_record of the ring protocol,
rnr_events everywhere) are invariants, not measurements: any nonzero
current value fails regardless of tolerance.

Key-set drift fails in BOTH directions: a benchmark or metric present in
only one of the two reports (renamed, dropped, or added without a baseline
refresh) is an error, never silently skipped — a rename would otherwise
un-gate the metric it renamed.

Usage: tools/compare_datapath.py BASELINE CURRENT [--tolerance 0.10]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    rows = {}
    for entry in report.get("benchmarks", []):
        name = entry["name"]
        rows[name] = {k: v for k, v in entry.items()
                      if k != "name" and isinstance(v, (int, float))}
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative deviation per metric "
                             "(default 0.10)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = []
    missing = sorted(set(base) - set(cur))
    unexpected = sorted(set(cur) - set(base))
    for name in sorted(base):
        if name not in cur:
            continue
        for key in sorted(set(cur[name]) - set(base[name])):
            failures.append(
                f"{name}: metric '{key}' not in baseline (refresh "
                f"BENCH_datapath_protocols.baseline.json)")
        for key, bval in sorted(base[name].items()):
            if key not in cur[name]:
                failures.append(f"{name}: metric '{key}' missing")
                continue
            cval = cur[name][key]
            if bval == 0:
                ok = cval == 0
                delta = "" if ok else f" (now {cval})"
            else:
                rel = cval / bval - 1.0
                ok = abs(rel) <= args.tolerance
                delta = f" ({rel:+.1%})"
            status = "ok" if ok else "DEVIATED"
            print(f"{name:28} {key:24} {bval:12.3f} -> {cval:12.3f}"
                  f"{delta:12} {status}")
            if not ok:
                failures.append(f"{name}/{key}: {bval} -> {cval}")

    if missing:
        print(f"error: benchmarks missing from current report: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    if unexpected:
        print(f"error: benchmarks not in baseline (refresh it): "
              f"{', '.join(unexpected)}", file=sys.stderr)
        return 1
    if failures:
        print(f"error: {len(failures)} metric(s) deviated more than "
              f"{args.tolerance:.0%} from the committed baseline",
              file=sys.stderr)
        return 1
    print(f"datapath: all metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

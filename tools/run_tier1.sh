#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green, in one command.
#
#   1. Release configure + build of everything (tests and benches).
#   2. Full ctest suite.
#   3. ASan/UBSan pass over the allocation-sensitive suites
#      (tools/check_asan.sh).
#   4. Optimized UBSan pass over the same plus the obs suite
#      (tools/check_ubsan.sh).
#
# Usage: tools/run_tier1.sh [--fast]
#   --fast  skip the sanitizer rebuilds (steps 3 and 4)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

cmake --preset release -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

if [[ "$FAST" == 0 ]]; then
  "$ROOT/tools/check_asan.sh"
  "$ROOT/tools/check_ubsan.sh"
fi

echo "tier1: all checks passed"

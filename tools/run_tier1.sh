#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green, in one command.
#
#   1. Release configure + build of everything (tests and benches).
#   2. Full ctest suite.
#   3. Host-perf gate: bench/run_simcore.sh, compared against the committed
#      BENCH_simcore.baseline.json — fails on a >10% regression
#      (tools/compare_simcore.py).
#   3b. Datapath-protocol gate: bench/abl_datapath_protocols (deterministic
#      virtual-time metrics) vs BENCH_datapath_protocols.baseline.json —
#      fails on a >10% deviation (tools/compare_datapath.py).
#   3b'. Client-scaling gate: bench/tbl_client_scaling (16 K -> 1 M logical
#      clients over multiplexed QPs, §14) vs
#      BENCH_client_scaling.baseline.json — fails on deviation, key-set
#      drift, or a memory-constancy violation
#      (tools/compare_client_scaling.py).
#   3b''. Failover gate: bench/tbl_failover (leader kill mid-traffic, §15;
#      deterministic virtual-time metrics) vs BENCH_failover.baseline.json —
#      fails on deviation, key-set drift, or an exactly-once violation
#      (tools/compare_failover.py).
#   3c. Live-monitor exercise: bench/tbl_slo_tenants runs with the invariant
#      monitor ticking in --strict mode (any watcher violation aborts the
#      bench and thus the gate), then tools/obs_report.py diffs its
#      --metrics_json dump against the committed BENCH_slo.baseline.json.
#      The obs diff is ADVISORY: deviations print a warning but do not fail
#      tier-1, since the per-subsystem instrument counts are exactly what a
#      legitimate datapath change moves.
#   4. ASan/UBSan pass over the allocation-sensitive suites
#      (tools/check_asan.sh).
#   5. Optimized UBSan pass over the same plus the obs suite
#      (tools/check_ubsan.sh).
#   6. TSan pass over the same suites (tools/check_tsan.sh).
#
# Usage: tools/run_tier1.sh [--fast]
#   --fast  skip the perf gate and sanitizer rebuilds (steps 3-6)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

cmake --preset release -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

if [[ "$FAST" == 0 ]]; then
  "$ROOT/bench/run_simcore.sh" "$BUILD_DIR"
  python3 "$ROOT/tools/compare_simcore.py" \
    "$ROOT/BENCH_simcore.baseline.json" "$ROOT/BENCH_simcore.json" \
    --max-regress 0.10
  "$BUILD_DIR/bench/abl_datapath_protocols" \
    --json="$ROOT/BENCH_datapath_protocols.json" >/dev/null
  python3 "$ROOT/tools/compare_datapath.py" \
    "$ROOT/BENCH_datapath_protocols.baseline.json" \
    "$ROOT/BENCH_datapath_protocols.json" --tolerance 0.10
  "$BUILD_DIR/bench/tbl_client_scaling" \
    --json="$ROOT/BENCH_client_scaling.json" >/dev/null
  python3 "$ROOT/tools/compare_client_scaling.py" \
    "$ROOT/BENCH_client_scaling.baseline.json" \
    "$ROOT/BENCH_client_scaling.json" --tolerance 0.10
  "$BUILD_DIR/bench/tbl_failover" \
    --json="$ROOT/BENCH_failover.json" >/dev/null
  python3 "$ROOT/tools/compare_failover.py" \
    "$ROOT/BENCH_failover.baseline.json" \
    "$ROOT/BENCH_failover.json" --tolerance 0.10
  "$BUILD_DIR/bench/tbl_slo_tenants" --strict --monitor_period=100000 \
    --metrics_json="$ROOT/BENCH_slo.json" >/dev/null
  python3 "$ROOT/tools/obs_report.py" "$ROOT/BENCH_slo.baseline.json" \
    "$ROOT/BENCH_slo.json" --tolerance 0.10 \
    || echo "obs_report: ADVISORY deviation vs BENCH_slo.baseline.json" \
            "(refresh the baseline if the change is intended)"
  "$ROOT/tools/check_asan.sh"
  "$ROOT/tools/check_ubsan.sh"
  "$ROOT/tools/check_tsan.sh"
fi

echo "tier1: all checks passed"

#!/usr/bin/env python3
"""Diff two --metrics_json dumps, grouped by subsystem.

Takes a baseline and a current MetricsRegistry snapshot (the files written
by any bench's --metrics_json=<path> flag, or a committed baseline such as
BENCH_slo.baseline.json) and reports per-instrument deltas rolled up by
subsystem — kafka (kd.broker.*, kd.tcp.*), direct (kd.direct.*), rdma
(kd.rdma.*), sim (kd.sim.*), other.

Gate semantics match tools/compare_datapath.py:
  - --tolerance (default 0.10) bounds the relative deviation, either
    direction, of every counter and gauge value.
  - Zero-valued baselines are invariants: any nonzero current value fails
    regardless of tolerance.
  - Key-set drift fails in BOTH directions — an instrument present in only
    one dump (renamed, dropped, or newly added without refreshing the
    baseline) is an error, never silently skipped.
  - Histograms gate on count (tolerance-checked); min/max/mean are
    reported for context only, since a schedule-identical run reproduces
    them exactly but any intended timing change would move every one.

Usage: tools/obs_report.py BASELINE CURRENT [--tolerance 0.10]
                                            [--only SUBSYSTEM]
"""

import argparse
import json
import sys


SUBSYSTEMS = (
    ("kafka", ("kd.broker.", "kd.tcp.")),
    ("direct", ("kd.direct.",)),
    ("rdma", ("kd.rdma.",)),
    ("sim", ("kd.sim.",)),
)


def subsystem_of(name):
    for subsystem, prefixes in SUBSYSTEMS:
        if name.startswith(prefixes):
            return subsystem
    return "other"


def flatten(dump):
    """-> {instrument_name: {metric_key: number}}."""
    out = {}
    for name, value in dump.get("counters", {}).items():
        out[name] = {"value": value}
    for name, gauge in dump.get("gauges", {}).items():
        out[name] = {"value": gauge["value"],
                     "high_water": gauge["high_water"]}
    for name, hist in dump.get("histograms", {}).items():
        out[name] = {"count": hist["count"]}
    return out


def load(path):
    with open(path) as f:
        return flatten(json.load(f))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative deviation per metric "
                             "(default 0.10)")
    parser.add_argument("--only", default=None,
                        help="restrict to one subsystem "
                             "(kafka/direct/rdma/sim/other)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if args.only:
        base = {n: m for n, m in base.items()
                if subsystem_of(n) == args.only}
        cur = {n: m for n, m in cur.items() if subsystem_of(n) == args.only}

    failures = []
    missing = sorted(set(base) - set(cur))
    unexpected = sorted(set(cur) - set(base))

    by_subsystem = {}
    for name in sorted(set(base) & set(cur)):
        by_subsystem.setdefault(subsystem_of(name), []).append(name)

    for subsystem in ("kafka", "direct", "rdma", "sim", "other"):
        names = by_subsystem.get(subsystem, [])
        if not names:
            continue
        deviated = 0
        lines = []
        for name in names:
            for key, bval in sorted(base[name].items()):
                if key not in cur[name]:
                    failures.append(f"{name}: key '{key}' missing")
                    continue
                cval = cur[name][key]
                if bval == 0:
                    ok = cval == 0
                    delta = "" if ok else f" (now {cval})"
                else:
                    rel = cval / bval - 1.0
                    ok = abs(rel) <= args.tolerance
                    delta = f" ({rel:+.1%})" if cval != bval else ""
                if not ok:
                    failures.append(f"{name}/{key}: {bval} -> {cval}")
                    deviated += 1
                if not ok or cval != bval:
                    lines.append(
                        f"    {name}.{key:12} {bval:>14} -> {cval:>14}"
                        f"{delta}  {'ok' if ok else 'DEVIATED'}")
            for key in sorted(set(cur[name]) - set(base[name])):
                failures.append(f"{name}: key '{key}' not in baseline")
        status = "DEVIATED" if deviated else "ok"
        print(f"  {subsystem:8} {len(names):4} instruments, "
              f"{deviated} deviated  {status}")
        for line in lines:
            print(line)

    if missing:
        print(f"error: instruments missing from current dump: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    if unexpected:
        print(f"error: instruments not in baseline (refresh it): "
              f"{', '.join(unexpected)}", file=sys.stderr)
        return 1
    if failures:
        print(f"error: {len(failures)} metric(s) deviated more than "
              f"{args.tolerance:.0%} from the baseline", file=sys.stderr)
        return 1
    print(f"obs: all instruments within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

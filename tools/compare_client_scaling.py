#!/usr/bin/env python3
"""Compare a tbl_client_scaling JSON report against the baseline.

Semantics follow tools/compare_datapath.py: the bench is deterministic in
virtual time, so sim-derived metrics must match the committed baseline
within --tolerance (default 10%, relative, either direction). Zero-valued
baselines (e.g. `rejected`) are invariants — any nonzero current value
fails regardless of tolerance. Key-set drift fails in BOTH directions: a
benchmark or metric present in only one report (renamed, dropped, or
added without refreshing BENCH_client_scaling.baseline.json) is an error,
never silently skipped.

Host-speed-dependent metrics (any key starting with "host_") are excluded
from gating: they exist in the JSON for eyeballing, but vary with the
machine running the gate.

On top of the per-metric diff, two memory-constancy group checks encode
the §14 scaling claims directly (so a baseline refresh cannot silently
launder them away):
  - all client_scaling_mux/* rows must report identical
    ctrl_recv_buf_bytes AND identical meta_peak_bytes — broker memory is
    O(active streams), independent of the logical client count;
  - all client_scaling/*/srq_on rows must report identical
    ctrl_recv_buf_bytes — the SRQ arena does not grow with producers.

Usage: tools/compare_client_scaling.py BASELINE CURRENT [--tolerance 0.10]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    rows = {}
    for entry in report.get("benchmarks", []):
        name = entry["name"]
        rows[name] = {k: v for k, v in entry.items()
                      if k != "name" and isinstance(v, (int, float))
                      and not isinstance(v, bool)
                      and not k.startswith("host_")}
    return rows


def constancy_failures(rows):
    """The §14 memory claims, checked on the CURRENT report."""
    failures = []
    for prefix, keys in (
            ("client_scaling_mux/", ("ctrl_recv_buf_bytes",
                                     "meta_peak_bytes")),
            ("client_scaling/", ("ctrl_recv_buf_bytes",))):
        for key in keys:
            values = {}
            for name, metrics in rows.items():
                if not name.startswith(prefix):
                    continue
                if prefix == "client_scaling/" and not name.endswith(
                        "/srq_on"):
                    continue
                if key in metrics:
                    values[name] = metrics[key]
            if len(set(values.values())) > 1:
                failures.append(
                    f"memory constancy violated: {key} differs across "
                    f"{prefix}* rows: {sorted(values.items())}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative deviation per metric "
                             "(default 0.10)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = []
    missing = sorted(set(base) - set(cur))
    unexpected = sorted(set(cur) - set(base))
    for name in sorted(base):
        if name not in cur:
            continue
        for key in sorted(set(cur[name]) - set(base[name])):
            failures.append(
                f"{name}: metric '{key}' not in baseline (refresh "
                f"BENCH_client_scaling.baseline.json)")
        for key, bval in sorted(base[name].items()):
            if key not in cur[name]:
                failures.append(f"{name}: metric '{key}' missing")
                continue
            cval = cur[name][key]
            if bval == 0:
                ok = cval == 0
                delta = "" if ok else f" (now {cval})"
            else:
                rel = cval / bval - 1.0
                ok = abs(rel) <= args.tolerance
                delta = f" ({rel:+.1%})"
            status = "ok" if ok else "DEVIATED"
            print(f"{name:32} {key:22} {bval:14.3f} -> {cval:14.3f}"
                  f"{delta:12} {status}")
            if not ok:
                failures.append(f"{name}/{key}: {bval} -> {cval}")

    failures.extend(constancy_failures(cur))

    if missing:
        print(f"error: benchmarks missing from current report: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    if unexpected:
        print(f"error: benchmarks not in baseline (refresh it): "
              f"{', '.join(unexpected)}", file=sys.stderr)
        return 1
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print(f"client_scaling: all metrics within {args.tolerance:.0%} of "
          f"baseline; memory-constancy checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

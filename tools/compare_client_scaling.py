#!/usr/bin/env python3
"""Compare a tbl_client_scaling JSON report against the baseline.

Semantics follow tools/compare_datapath.py via the shared
tools/bench_compare.py machinery: the bench is deterministic in virtual
time, so sim-derived metrics must match the committed baseline within
--tolerance (default 10%, relative, either direction). Zero-valued
baselines (e.g. `rejected`) are invariants — any nonzero current value
fails regardless of tolerance. Key-set drift fails in BOTH directions: a
benchmark or metric present in only one report (renamed, dropped, or
added without refreshing BENCH_client_scaling.baseline.json) is an error,
never silently skipped. Host-speed-dependent metrics (any key starting
with "host_") are excluded from gating.

On top of the per-metric diff, two memory-constancy group checks encode
the §14 scaling claims directly (so a baseline refresh cannot silently
launder them away):
  - all client_scaling_mux/* rows must report identical
    ctrl_recv_buf_bytes AND identical meta_peak_bytes — broker memory is
    O(active streams), independent of the logical client count;
  - all client_scaling/*/srq_on rows must report identical
    ctrl_recv_buf_bytes — the SRQ arena does not grow with producers.

Usage: tools/compare_client_scaling.py BASELINE CURRENT [--tolerance 0.10]
"""

import argparse
import sys

import bench_compare


def constancy_failures(rows):
    """The §14 memory claims, checked on the CURRENT report."""
    failures = []
    for prefix, keys in (
            ("client_scaling_mux/", ("ctrl_recv_buf_bytes",
                                     "meta_peak_bytes")),
            ("client_scaling/", ("ctrl_recv_buf_bytes",))):
        for key in keys:
            values = {}
            for name, metrics in rows.items():
                if not name.startswith(prefix):
                    continue
                if prefix == "client_scaling/" and not name.endswith(
                        "/srq_on"):
                    continue
                if key in metrics:
                    values[name] = metrics[key]
            if len(set(values.values())) > 1:
                failures.append(
                    f"memory constancy violated: {key} differs across "
                    f"{prefix}* rows: {sorted(values.items())}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max relative deviation per metric "
                             "(default 0.10)")
    args = parser.parse_args()

    base = bench_compare.load(args.baseline)
    cur = bench_compare.load(args.current)

    failures, missing, unexpected = bench_compare.diff(
        base, cur, args.tolerance, "BENCH_client_scaling.baseline.json")
    failures.extend(constancy_failures(cur))

    if missing:
        print(f"error: benchmarks missing from current report: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    if unexpected:
        print(f"error: benchmarks not in baseline (refresh it): "
              f"{', '.join(unexpected)}", file=sys.stderr)
        return 1
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print(f"client_scaling: all metrics within {args.tolerance:.0%} of "
          f"baseline; memory-constancy checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

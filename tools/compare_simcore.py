#!/usr/bin/env python3
"""Compare a simcore_gbench JSON report against the committed baseline.

Fails (exit 1) when any benchmark regressed by more than --max-regress
(relative real_time increase). Handles both report shapes google-benchmark
produces: plain per-repetition "iteration" entries (the committed baseline)
and "aggregate" entries (what run_simcore.sh emits with
--benchmark_report_aggregates_only). For each benchmark name the
representative time is the minimum across repetitions, or the median
aggregate when only aggregates are present — the min/median is what's
stable across runs on a noisy host.

Parallel-engine variants (names carrying a "threads:N" argument, e.g.
BM_ShardedParallel/shards:8/threads:4) are gated exactly like every other
benchmark — the baseline holds one entry per thread count, so a slowdown
at any parallelism level alone fails the comparison. In addition, a
thread-scaling section reports each variant's speedup over its own
single-threaded (threads:1) time for baseline and current. Speedup is
reported, not gated: the measured scaling is a property of the capture
host (see the host_cores context field run_simcore.sh records; a 1-core
container cannot show parallel speedup no matter the engine).

Usage: tools/compare_simcore.py BASELINE CURRENT [--max-regress 0.10]
"""

import argparse
import json
import re
import sys


def representative_times(path):
    """name -> representative real_time (ns) for one report file."""
    with open(path) as f:
        report = json.load(f)
    iterations = {}   # name -> [real_time, ...]
    aggregates = {}   # name -> {aggregate_name: real_time}
    for entry in report.get("benchmarks", []):
        run_type = entry.get("run_type", "iteration")
        if run_type == "aggregate":
            agg = entry.get("aggregate_name", "")
            base = entry.get("run_name") or entry["name"]
            if base.endswith("_" + agg):
                base = base[: -len(agg) - 1]
            aggregates.setdefault(base, {})[agg] = entry["real_time"]
        else:
            base = entry.get("run_name") or entry["name"]
            iterations.setdefault(base, []).append(entry["real_time"])
    times = {name: min(vals) for name, vals in iterations.items()}
    for name, aggs in aggregates.items():
        if name in times:
            continue
        for pick in ("median", "mean"):
            if pick in aggs:
                times[name] = aggs[pick]
                break
    return times


def thread_groups(times):
    """Groups 'threads:N' variants: family -> {N: real_time}."""
    groups = {}
    for name, t in times.items():
        m = re.search(r"^(.*)/threads:(\d+)(.*)$", name)
        if m is None:
            continue
        family = m.group(1) + m.group(3)
        groups.setdefault(family, {})[int(m.group(2))] = t
    return {f: g for f, g in groups.items() if len(g) > 1 and 1 in g}


def print_thread_scaling(label, times):
    groups = thread_groups(times)
    if not groups:
        return
    print(f"\nthread scaling ({label}; speedup vs threads:1 of the same "
          f"report):")
    for family in sorted(groups):
        g = groups[family]
        t1 = g[1]
        cells = [f"{n}T {t1 / g[n]:5.2f}x" for n in sorted(g)]
        print(f"  {family:50} {'  '.join(cells)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regress", type=float, default=0.10,
                        help="max allowed relative slowdown (default 0.10)")
    args = parser.parse_args()

    base = representative_times(args.baseline)
    cur = representative_times(args.current)

    missing = sorted(set(base) - set(cur))
    regressions = []
    print(f"{'benchmark':60} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(base):
        if name not in cur:
            continue
        delta = cur[name] / base[name] - 1.0
        flag = "  REGRESSED" if delta > args.max_regress else ""
        print(f"{name:60} {base[name]:12.1f} {cur[name]:12.1f} "
              f"{delta:+7.1%}{flag}")
        if delta > args.max_regress:
            regressions.append((name, delta))

    print_thread_scaling("baseline", base)
    print_thread_scaling("current", cur)

    if missing:
        print(f"error: benchmarks missing from current report: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    if regressions:
        print(f"error: {len(regressions)} benchmark(s) regressed more than "
              f"{args.max_regress:.0%}", file=sys.stderr)
        return 1
    print(f"simcore: no benchmark regressed more than {args.max_regress:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare a simcore_gbench JSON report against the committed baseline.

Fails (exit 1) when any benchmark regressed by more than --max-regress
(relative real_time increase), or when the benchmark sets of baseline and
current differ in either direction (a rename/addition must refresh the
committed baseline, not silently drop out of the gate). Handles both report shapes google-benchmark
produces: plain per-repetition "iteration" entries (the committed baseline)
and "aggregate" entries (what run_simcore.sh emits with
--benchmark_report_aggregates_only). For each benchmark name the
representative time is the minimum across repetitions, or the median
aggregate when only aggregates are present — the min/median is what's
stable across runs on a noisy host.

Parallel-engine variants (names carrying a "threads:N" argument, e.g.
BM_ShardedParallel/shards:8/threads:4) are gated exactly like every other
benchmark — the baseline holds one entry per thread count, so a slowdown
at any parallelism level alone fails the comparison — with one exception:
when the baseline was captured on a 1-core host (context.host_cores == 1)
its threads:N>1 times carry no scaling signal, so regressions on those
variants are reported as warnings instead of failing the gate. In
addition, a thread-scaling section reports each variant's speedup over
its own single-threaded (threads:1) time for baseline and current.
Speedup is reported, not gated: the measured scaling is a property of the
capture host (a 1-core container cannot show parallel speedup no matter
the engine).

Usage: tools/compare_simcore.py BASELINE CURRENT [--max-regress 0.10]
"""

import argparse
import json
import re
import sys


def load_report(path):
    with open(path) as f:
        return json.load(f)


def representative_times(report):
    """name -> representative real_time (ns) for one report."""
    iterations = {}   # name -> [real_time, ...]
    aggregates = {}   # name -> {aggregate_name: real_time}
    for entry in report.get("benchmarks", []):
        run_type = entry.get("run_type", "iteration")
        if run_type == "aggregate":
            agg = entry.get("aggregate_name", "")
            base = entry.get("run_name") or entry["name"]
            if base.endswith("_" + agg):
                base = base[: -len(agg) - 1]
            aggregates.setdefault(base, {})[agg] = entry["real_time"]
        else:
            base = entry.get("run_name") or entry["name"]
            iterations.setdefault(base, []).append(entry["real_time"])
    times = {name: min(vals) for name, vals in iterations.items()}
    for name, aggs in aggregates.items():
        if name in times:
            continue
        for pick in ("median", "mean"):
            if pick in aggs:
                times[name] = aggs[pick]
                break
    return times


def thread_groups(times):
    """Groups 'threads:N' variants: family -> {N: real_time}."""
    groups = {}
    for name, t in times.items():
        m = re.search(r"^(.*)/threads:(\d+)(.*)$", name)
        if m is None:
            continue
        family = m.group(1) + m.group(3)
        groups.setdefault(family, {})[int(m.group(2))] = t
    return {f: g for f, g in groups.items() if len(g) > 1 and 1 in g}


def print_thread_scaling(label, times):
    groups = thread_groups(times)
    if not groups:
        return
    print(f"\nthread scaling ({label}; speedup vs threads:1 of the same "
          f"report):")
    for family in sorted(groups):
        g = groups[family]
        t1 = g[1]
        cells = [f"{n}T {t1 / g[n]:5.2f}x" for n in sorted(g)]
        print(f"  {family:50} {'  '.join(cells)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regress", type=float, default=0.10,
                        help="max allowed relative slowdown (default 0.10)")
    args = parser.parse_args()

    base_report = load_report(args.baseline)
    cur_report = load_report(args.current)
    base = representative_times(base_report)
    cur = representative_times(cur_report)

    # A baseline captured on a 1-core host carries no thread-scaling signal:
    # its threads:N>1 times are serialized and comparing against them on a
    # multi-core host (or vice versa) gates on host shape, not the code.
    # Those comparisons soften to warnings.
    base_cores = str(base_report.get("context", {}).get("host_cores", ""))
    cur_cores = str(cur_report.get("context", {}).get("host_cores", ""))
    single_core_baseline = base_cores == "1"
    for label, cores in (("baseline", base_cores), ("current", cur_cores)):
        if cores == "1":
            print("*" * 72, file=sys.stderr)
            print(f"* WARNING: the {label} report was captured on a 1-core "
                  f"host (context.host_cores=1).", file=sys.stderr)
            print("* Its threads:N>1 times are serialized and carry no "
                  "thread-scaling signal;", file=sys.stderr)
            print("* treat every parallel-variant comparison below with "
                  "suspicion.", file=sys.stderr)
            print("*" * 72, file=sys.stderr)

    def soft(name):
        m = re.search(r"/threads:(\d+)", name)
        return (single_core_baseline and m is not None
                and int(m.group(1)) > 1)

    missing = sorted(set(base) - set(cur))
    unexpected = sorted(set(cur) - set(base))
    regressions = []
    soft_warnings = []
    print(f"{'benchmark':60} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(base):
        if name not in cur:
            continue
        delta = cur[name] / base[name] - 1.0
        regressed = delta > args.max_regress
        flag = ""
        if regressed and soft(name):
            flag = "  WARN (1-core baseline)"
            soft_warnings.append((name, delta))
        elif regressed:
            flag = "  REGRESSED"
            regressions.append((name, delta))
        print(f"{name:60} {base[name]:12.1f} {cur[name]:12.1f} "
              f"{delta:+7.1%}{flag}")

    print_thread_scaling("baseline", base)
    print_thread_scaling("current", cur)

    if soft_warnings:
        print(f"warning: {len(soft_warnings)} threads:N>1 benchmark(s) "
              f"exceeded the gate but the baseline was captured on a 1-core "
              f"host (context.host_cores=1); not failing", file=sys.stderr)
    if missing:
        print(f"error: benchmarks missing from current report: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    if unexpected:
        # A rename shows up as missing+unexpected; a new benchmark without
        # a baseline entry would otherwise run ungated forever.
        print(f"error: benchmarks not in baseline (refresh "
              f"BENCH_simcore.baseline.json): {', '.join(unexpected)}",
              file=sys.stderr)
        return 1
    if regressions:
        print(f"error: {len(regressions)} benchmark(s) regressed more than "
              f"{args.max_regress:.0%}", file=sys.stderr)
        return 1
    print(f"simcore: no benchmark regressed more than {args.max_regress:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Builds the common + sim + sharded-engine test binaries under
# ThreadSanitizer (the "tsan" CMake preset) and runs them. The per-shard
# simulator core is single-threaded by design; the sharded engine
# (sim/sharded.h) is where real threads enter — the epoch barrier, the
# shard-claim atomics, and the SPSC mailbox rings — so its tests (parallel
# fingerprint equality, mailbox stress, the two-thread ring stress) are the
# primary subjects of this pass. The obs suite rides along: the flight
# recorder borrows the SPSC ring layout and must stay clean under the same
# scrutiny even though the harness drives it from merged (single-threaded)
# mode. The §14 churn suite (QP connect/disconnect cycles, LRU eviction,
# reconnect racing in-flight acks) rides along for the same reason. The §15
# failover suite exercises the sharded engine under broker death: its
# shard-count determinism test runs the same leader-kill scenario on 1 and 4
# shards, so the epoch barrier and merge path see teardown-heavy traffic.
#
# Usage: tools/check_tsan.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-tsan"

cmake --preset tsan -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target common_test sim_test sharded_test obs_test churn_test failover_test

export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1

"$BUILD_DIR/tests/common_test"
"$BUILD_DIR/tests/sim_test"
"$BUILD_DIR/tests/sharded_test"
"$BUILD_DIR/tests/obs_test"
"$BUILD_DIR/tests/churn_test"
"$BUILD_DIR/tests/failover_test"

echo "tsan: all common + sim + sharded + obs + churn + failover tests passed"

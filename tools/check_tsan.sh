#!/usr/bin/env bash
# Builds the common + sim test binaries under ThreadSanitizer (the "tsan"
# CMake preset) and runs them. The simulator core is single-threaded by
# design; this pass guards the boundary where that assumption could erode —
# coroutine frames resumed from the event loop, Event/Channel wakeup lists,
# and any future worker-thread experiments linking against kd_sim.
#
# Usage: tools/check_tsan.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-tsan"

cmake --preset tsan -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target common_test sim_test

export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1

"$BUILD_DIR/tests/common_test"
"$BUILD_DIR/tests/sim_test"

echo "tsan: all common + sim tests passed"

#!/usr/bin/env bash
# Builds the common + sim + obs test binaries under ASan/UBSan (the "asan"
# CMake preset) and runs them. These suites cover the allocation-free hot
# paths — InlineFunction storage/relocation, the vector-based event heap,
# BufferPool recycling, the SIMD CRC32C kernels, and the flight-recorder
# ring / monitor callbacks — which is exactly the code where a lifetime or
# aliasing bug would hide. The §14 churn suite rides along: QP
# connect/disconnect cycles, LRU eviction with transparent reconnect, and
# eviction racing in-flight acks are the paths most likely to leak a
# coroutine frame or touch a freed transport. The §15 failover suite rides
# along: broker kills mid-traffic, controller re-election, group-rebalance
# storms — teardown-heavy scenarios where a parked coroutine frame
# (purgatory waiter, ack reader) would leak if shutdown missed a wakeup.
#
# Usage: tools/check_asan.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-asan"

cmake --preset asan -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target common_test sim_test sharded_test obs_test churn_test failover_test

# No LSAN_OPTIONS / suppression file: deployment teardown is now
# coroutine-aware (Cluster::Shutdown walks brokers -> QPs/sockets ->
# channels and ~TestCluster drains the woken frames), so leak checking
# runs unsuppressed — any report is a real regression.
export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1

"$BUILD_DIR/tests/common_test"
"$BUILD_DIR/tests/sim_test"
"$BUILD_DIR/tests/sharded_test"
"$BUILD_DIR/tests/obs_test"
"$BUILD_DIR/tests/churn_test"
"$BUILD_DIR/tests/failover_test"

echo "asan/ubsan: all common + sim + sharded + obs + churn + failover tests passed"

#!/usr/bin/env bash
# Builds the common + sim + obs test binaries under ASan/UBSan (the "asan"
# CMake preset) and runs them. These suites cover the allocation-free hot
# paths — InlineFunction storage/relocation, the vector-based event heap,
# BufferPool recycling, the SIMD CRC32C kernels, and the flight-recorder
# ring / monitor callbacks — which is exactly the code where a lifetime or
# aliasing bug would hide.
#
# Usage: tools/check_asan.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-asan"

cmake --preset asan -S "$ROOT" >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target common_test sim_test sharded_test obs_test

export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1
# The obs suite spins up full TestCluster deployments, whose destructor-only
# teardown leaves known coroutine<->channel reference cycles (see
# tools/lsan_suppressions.txt and ROADMAP.md); suppress those, keep the rest.
export LSAN_OPTIONS=suppressions="$ROOT/tools/lsan_suppressions.txt"

"$BUILD_DIR/tests/common_test"
"$BUILD_DIR/tests/sim_test"
"$BUILD_DIR/tests/sharded_test"
"$BUILD_DIR/tests/obs_test"

echo "asan/ubsan: all common + sim + sharded + obs tests passed"

"""Shared machinery for the deterministic-bench JSON gates.

tools/compare_client_scaling.py and tools/compare_failover.py both gate a
virtual-time-deterministic bench report against a committed baseline with
the same semantics (established by tools/compare_datapath.py):

  - numeric metrics must match within a relative tolerance, either
    direction;
  - a zero-valued baseline metric is an invariant — any nonzero current
    value fails regardless of tolerance;
  - key-set drift fails in BOTH directions: a benchmark or metric present
    in only one report (renamed, dropped, or added without refreshing the
    baseline) is an error, never silently skipped;
  - host-speed-dependent metrics (keys starting with "host_") are excluded
    from gating.

This module holds that machinery once; the per-bench scripts add their own
invariant checks (memory constancy, exactly-once delivery) on top.
"""

import json


def load(path):
    """Returns {bench_name: {metric: value}} with host_* keys stripped."""
    with open(path) as f:
        report = json.load(f)
    rows = {}
    for entry in report.get("benchmarks", []):
        name = entry["name"]
        rows[name] = {k: v for k, v in entry.items()
                      if k != "name" and isinstance(v, (int, float))
                      and not isinstance(v, bool)
                      and not k.startswith("host_")}
    return rows


def diff(base, cur, tolerance, baseline_name):
    """Per-metric comparison; returns (failures, missing, unexpected).

    Prints one line per compared metric. `missing`/`unexpected` are
    benchmark names present in only one report; metric-level drift within
    a shared benchmark lands in `failures`.
    """
    failures = []
    missing = sorted(set(base) - set(cur))
    unexpected = sorted(set(cur) - set(base))
    for name in sorted(base):
        if name not in cur:
            continue
        for key in sorted(set(cur[name]) - set(base[name])):
            failures.append(
                f"{name}: metric '{key}' not in baseline (refresh "
                f"{baseline_name})")
        for key, bval in sorted(base[name].items()):
            if key not in cur[name]:
                failures.append(f"{name}: metric '{key}' missing")
                continue
            cval = cur[name][key]
            if bval == 0:
                ok = cval == 0
                delta = "" if ok else f" (now {cval})"
            else:
                rel = cval / bval - 1.0
                ok = abs(rel) <= tolerance
                delta = f" ({rel:+.1%})"
            status = "ok" if ok else "DEVIATED"
            print(f"{name:32} {key:22} {bval:14.3f} -> {cval:14.3f}"
                  f"{delta:12} {status}")
            if not ok:
                failures.append(f"{name}/{key}: {bval} -> {cval}")
    return failures, missing, unexpected
